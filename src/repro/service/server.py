"""Event-loop TCP server for the reputation service.

One connection carries any number of request frames
(:mod:`repro.service.wire`), *pipelined* — a client may keep many
requests in flight; replies come back in request order. Two codecs
share the port: every connection starts on length-prefixed JSON, and a
``hello`` carrying ``accept_codecs`` may negotiate the binary framing
(old clients never send the key and keep speaking JSON byte-for-byte).

The JSON request surface is unchanged:

``{"op": "query", "ip": "1.2.3.4", "day": 17}``
    → ``{"ok": true, "result": {<verdict>}}`` — ``ip`` may also be an
    integer; ``day`` is optional (defaults to the index's last window
    day).
``{"op": "batch", "queries": [{"ip": ..., "day": ...}, ...]}``
    → ``{"ok": true, "result": [<verdict>, ...]}`` (at most
    :data:`MAX_BATCH` queries per frame).
``{"op": "stats"}``
    → engine counters, cache occupancy, index sizes and the live
    epoch/sequence state.
``{"op": "hello"}``
    → the handshake: service name, protocol version, whether the
    server follows an update log, and the current index ``epoch`` +
    last-applied ``seq``; with ``"accept_codecs": ["binary"]`` the
    reply adds ``codecs``/``codec`` and the connection switches to the
    binary framing for all later frames.

Binary connections may additionally send packed ``FT_BATCH_REQ``
frames — the hot path. Those are answered from a packed-verdict cache
keyed ``(epoch, ip, day)``: a cache hit copies pre-encoded record
bytes without touching a dict, which is where the serving plane's
throughput lives. Entries are stored under the verdict's *own* epoch,
so a hot swap mid-frame can never poison the cache.

Robustness contract (unchanged from the threaded server): a malformed
frame or request gets an error reply (``{"ok": false, "error":
...}``), never a crash; only a broken frame *boundary* (oversized
length, bad magic) or an idle timeout closes the connection, because
there is no way to resynchronise the stream. Shutdown is graceful —
queued replies drain, the listener stops accepting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..net.family import V4, V6, AddressFamily, family_of_ip
from .aio import Conn, Slot, WireServer
from .engine import QueryEngine
from .wire import MAX_FRAME_BYTES, pack_verdict, pack_verdict6

__all__ = [
    "MAX_BATCH",
    "PROTOCOL_VERSION",
    "ReputationServer",
    "RequestError",
    "parse_ip",
    "parse_day",
]

#: Upper bound on queries in one batch frame.
MAX_BATCH = 10_000

#: Wire protocol version reported by the ``hello`` handshake. The
#: binary codec is a framing negotiation, not a new request surface,
#: so it does not bump the version.
PROTOCOL_VERSION = 1

#: Seconds a connection may sit idle before the server drops it.
DEFAULT_CONNECTION_TIMEOUT = 30.0

#: Packed-verdict cache capacity (records, not bytes).
PACKED_CACHE_SIZE = 1 << 15


class RequestError(ValueError):
    """A structurally valid frame asking something unanswerable."""


def parse_ip(value: Any, family: AddressFamily = V4) -> int:
    if isinstance(value, bool):
        raise RequestError(f"bad ip: {value!r}")
    if isinstance(value, int):
        if not family.valid_ip(value):
            raise RequestError(f"ip integer out of range: {value!r}")
        return value
    if isinstance(value, str):
        literal = family_of_ip(value)
        if literal is not family:
            # The common operator slip — a v6 literal at a v4 index —
            # gets a diagnosis, not a parse stack trace.
            raise RequestError(
                f"{literal.name} literal {value!r} cannot be answered "
                f"by this {family.name}-only index"
            )
        try:
            return family.parse(value)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
    raise RequestError(f"bad ip: {value!r}")


def parse_day(value: Any) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"bad day: {value!r}")
    return value


def parse_batch(
    queries: Any, family: AddressFamily = V4
) -> List[Tuple[int, Optional[int]]]:
    """Validate a JSON ``batch`` request's ``queries`` array."""
    if not isinstance(queries, list):
        raise RequestError("batch needs a 'queries' array")
    if len(queries) > MAX_BATCH:
        raise RequestError(
            f"batch of {len(queries)} exceeds the "
            f"{MAX_BATCH}-query limit"
        )
    parsed = []
    for item in queries:
        if not isinstance(item, dict):
            raise RequestError("each batch query must be an object")
        parsed.append(
            (parse_ip(item.get("ip"), family), parse_day(item.get("day")))
        )
    return parsed


def negotiate_hello(
    request: Dict[str, Any], result: Dict[str, Any]
) -> Optional[str]:
    """Apply codec negotiation to a ``hello`` ``result`` in place.

    Returns the codec the connection must switch to (or ``None``).
    Requests without ``accept_codecs`` leave the reply untouched, so
    pre-negotiation clients see byte-identical hello replies.
    """
    accepts = request.get("accept_codecs")
    if not isinstance(accepts, list):
        return None
    result["codecs"] = ["binary", "json"]
    if "binary" in accepts:
        result["codec"] = "binary"
        return "binary"
    result["codec"] = "json"
    return None


class ReputationServer:
    """The service's front door; binds on construction.

    Use ``port=0`` to bind an ephemeral port (tests);
    :attr:`address` reports the bound ``(host, port)``. Either call
    :meth:`serve_forever` on the current thread, or :meth:`start` to
    serve from a daemon thread, and :meth:`shutdown` (also via the
    context manager) to stop accepting and release the socket.
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
        max_frame: int = MAX_FRAME_BYTES,
        streaming: bool = False,
    ) -> None:
        self._engine = engine
        self._family = engine.family
        self._streaming = streaming
        # Packed reply records keyed (epoch, ip, resolved day); the
        # loop thread is the only toucher.
        self._packed: "OrderedDict[Tuple[int, int, int], bytes]" = (
            OrderedDict()
        )
        self._server = WireServer(
            self._handle,
            host,
            port,
            connection_timeout=connection_timeout,
            max_frame=max_frame,
        )

    # -- lifecycle (delegated to the WireServer) -----------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.address

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever()

    def start(self) -> Tuple[str, int]:
        """Serve from a background daemon thread; returns the address."""
        return self._server.start()

    def shutdown(self) -> None:
        """Stop accepting, flush queued replies, close the socket."""
        self._server.shutdown()

    def close_connections(self) -> None:
        """Sever every live client connection (a hard stop — what a
        crashed process would do to its peers)."""
        self._server.close_connections()

    def __enter__(self) -> "ReputationServer":
        return self

    def __exit__(self, *_: Any) -> None:
        self.shutdown()

    # -- request handling (loop thread) --------------------------------

    def _handle(
        self, conn: Conn, slot: Slot, kind: str, data: Any
    ) -> None:
        if kind == "batch" or kind == "batch6":
            wants = V6 if kind == "batch6" else V4
            if wants is not self._family:
                slot.fail(
                    f"{wants.name} batch frame cannot be answered by "
                    f"this {self._family.name}-only index"
                )
                return
            self._handle_packed_batch(slot, data, v6=wants is V6)
            return
        try:
            reply, new_codec = self._dispatch(data)
        except RequestError as exc:
            slot.fail(str(exc))
            return
        slot.complete(reply)
        if new_codec is not None:
            # After the (pre-switch-codec) reply: every later frame on
            # this connection uses the negotiated framing.
            conn.codec = new_codec

    def _dispatch(
        self, request: Any
    ) -> Tuple[Dict[str, Any], Optional[str]]:
        if not isinstance(request, dict):
            raise RequestError(
                f"request must be a JSON object, got "
                f"{type(request).__name__}"
            )
        op = request.get("op")
        engine = self._engine
        if op == "query":
            verdict = engine.query(
                parse_ip(request.get("ip"), self._family),
                parse_day(request.get("day")),
            )
            return {"ok": True, "result": verdict.to_wire()}, None
        if op == "batch":
            parsed = parse_batch(request.get("queries"), self._family)
            verdicts = engine.query_batch(parsed)
            return {
                "ok": True,
                "result": [v.to_wire() for v in verdicts],
            }, None
        if op == "stats":
            return {"ok": True, "result": engine.stats()}, None
        if op == "hello":
            epoch, seq = engine.epoch_state()
            result = {
                "service": "repro-reputation",
                "protocol": PROTOCOL_VERSION,
                "streaming": self._streaming,
                "epoch": epoch,
                "seq": seq,
            }
            new_codec = negotiate_hello(request, result)
            return {"ok": True, "result": result}, new_codec
        if op == "ping":
            return {"ok": True, "result": "pong"}, None
        raise RequestError(f"unknown op: {op!r}")

    def _handle_packed_batch(
        self,
        slot: Slot,
        pairs: List[Tuple[int, Optional[int]]],
        *,
        v6: bool = False,
    ) -> None:
        """The binary hot path: answer an ``FT_BATCH_REQ`` (or
        ``FT_BATCH_REQ6``) from the packed-record cache, touching the
        engine only for misses."""
        if len(pairs) > MAX_BATCH:
            slot.fail(
                f"batch of {len(pairs)} exceeds the "
                f"{MAX_BATCH}-query limit"
            )
            return
        engine = self._engine
        index, epoch, _seq = engine.resolve_state()
        default_day = index.default_day()
        cache = self._packed
        cache_get = cache.get
        records: List[Optional[bytes]] = []
        append = records.append
        miss_positions: List[int] = []
        miss_pairs: List[Tuple[int, Optional[int]]] = []
        for ip, day in pairs:
            record = cache_get(
                (epoch, ip, default_day if day is None else day)
            )
            if record is None:
                miss_positions.append(len(records))
                miss_pairs.append((ip, day))
            append(record)
        if miss_pairs:
            try:
                verdicts = engine.query_batch(miss_pairs)
            except ValueError as exc:
                slot.fail(str(exc))
                return
            pack = pack_verdict6 if v6 else pack_verdict
            for position, verdict in zip(miss_positions, verdicts):
                record = pack(verdict)
                records[position] = record
                # Keyed under the verdict's *own* epoch: if a hot swap
                # landed mid-batch, the entry must not shadow the new
                # epoch's answer.
                cache[(verdict.epoch, verdict.ip, verdict.day)] = record
            while len(cache) > PACKED_CACHE_SIZE:
                cache.popitem(last=False)
        if v6:
            slot.complete_records6(records)  # type: ignore[arg-type]
        else:
            slot.complete_records(records)  # type: ignore[arg-type]
