"""Framing and codec for the reputation service's TCP protocol.

Every message — request or reply — is one *frame*: a 4-byte big-endian
unsigned payload length followed by that many bytes of UTF-8 JSON.
Explicit limits keep a hostile peer from holding memory hostage: a
frame longer than :data:`MAX_FRAME_BYTES` (or empty) is rejected
before any payload is read.

Errors are split by whether the byte stream is still usable:

* a well-framed payload that fails to decode (bad UTF-8, bad JSON) is
  *recoverable* — the stream is still in sync and the server answers
  with an error reply;
* a framing violation (absurd length, connection cut mid-frame) is
  *not* — there is no way to find the next frame boundary, so the
  connection must be dropped.

:class:`FrameError.recoverable` carries that distinction.
"""

from __future__ import annotations

import json
import struct
from typing import Any, List, Optional, Protocol, Tuple

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "WireSocket",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
]

#: Hard ceiling on one frame's JSON payload (1 MiB — a 10K-query batch
#: fits with room to spare; nothing legitimate comes close).
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


class WireSocket(Protocol):
    """The slice of the socket API the codec needs — real sockets and
    test doubles both satisfy it structurally."""

    def sendall(self, data: bytes) -> None: ...

    def recv(self, bufsize: int) -> bytes: ...


class FrameError(ValueError):
    """A frame violated the protocol.

    ``recoverable`` is True when the byte stream is still in sync (the
    peer can be answered and the connection kept); False when framing
    itself broke and the connection must be closed.
    """

    def __init__(self, message: str, *, recoverable: bool = False) -> None:
        super().__init__(message)
        self.recoverable = recoverable


def encode_frame(obj: Any, *, max_size: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise ``obj`` into one wire frame (header + JSON payload)."""
    try:
        payload = json.dumps(
            obj, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unserialisable message: {exc}") from None
    if len(payload) > max_size:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes, max_size: int) -> Any:
    # Both callers check the declared length before reading; this bound
    # keeps the decoder safe even if a new call site forgets to.
    if len(payload) > max_size:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(
            f"undecodable frame payload: {exc}", recoverable=True
        ) from None


def decode_frame(
    buffer: bytes, *, max_size: int = MAX_FRAME_BYTES
) -> Optional[Tuple[Any, int]]:
    """Decode the first complete frame of ``buffer``.

    Returns ``(message, bytes_consumed)``, or ``None`` when the buffer
    holds only an incomplete frame so far (read more and retry).
    Raises :class:`FrameError` on violations.
    """
    if len(buffer) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack_from(buffer)
    _check_length(length, max_size)
    end = _HEADER.size + length
    if len(buffer) < end:
        return None
    return _decode_payload(buffer[_HEADER.size : end], max_size), end


def _check_length(length: int, max_size: int) -> None:
    if length == 0:
        raise FrameError("empty frame payload")
    if length > max_size:
        raise FrameError(
            f"declared frame length {length} exceeds the "
            f"{max_size}-byte limit"
        )


def send_frame(
    sock: WireSocket, obj: Any, *, max_size: int = MAX_FRAME_BYTES
) -> None:
    """Encode ``obj`` and write the full frame to ``sock``."""
    sock.sendall(encode_frame(obj, max_size=max_size))


def _recv_exact(sock: WireSocket, count: int) -> bytes:
    """Read exactly ``count`` bytes; short result means EOF hit."""
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: WireSocket, *, max_size: int = MAX_FRAME_BYTES
) -> Optional[Any]:
    """Read one frame from ``sock``.

    Returns the decoded message, or ``None`` on a clean EOF at a frame
    boundary (the peer hung up between requests). Raises
    :class:`FrameError` when the connection dies mid-frame or the frame
    violates the limits.
    """
    header = _recv_exact(sock, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise FrameError("connection closed inside a frame header")
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_size)
    payload = _recv_exact(sock, length)
    if len(payload) < length:
        raise FrameError(
            f"connection closed {length - len(payload)} bytes short of "
            "a full frame"
        )
    return _decode_payload(payload, max_size)
