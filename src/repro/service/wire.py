"""Framing and codecs for the reputation service's TCP protocol.

Two codecs share one connection model:

**JSON framing** (protocol version 1, the universal fallback): every
message — request or reply — is one *frame*, a 4-byte big-endian
unsigned payload length followed by that many bytes of UTF-8 JSON.

**Binary framing** (negotiated via the ``hello`` handshake, see
:mod:`repro.service.server`): a 10-byte header —

====== ===== ==========================================
offset bytes meaning
====== ===== ==========================================
0      1     magic (:data:`BINARY_MAGIC`)
1      1     frame type (:data:`FT_MSG` / :data:`FT_BATCH_REQ` /
             :data:`FT_BATCH_REP` / :data:`FT_BATCH_REQ6` /
             :data:`FT_BATCH_REP6`)
2      4     request id (big-endian u32; pipelined peers match
             replies to requests by this id)
6      4     payload length (big-endian u32)
====== ===== ==========================================

The frame type is the address-family tag: ``FT_BATCH_REQ``/``REP``
carry 32-bit addresses exactly as they always did (old frames stay
byte-compatible), while ``FT_BATCH_REQ6``/``REP6`` carry the same
record layouts widened to 16-byte big-endian IPv6 addresses. A peer
that never sends v6 frames never sees one back.

— followed by the payload.  ``FT_MSG`` payloads carry one
JSON-equivalent value in a compact tagged encoding (same data model as
the JSON codec: None/bool/int/float/str/list/str-keyed dict — both
directions of the iterative work-stack technique follow
:mod:`repro.bittorrent.bencode`).  ``FT_BATCH_REQ``/``FT_BATCH_REP``
carry the hot batch path as packed fixed-layout records so neither
side builds or parses per-verdict dicts: this, plus pipelining, is
where the serving plane's throughput comes from.

Explicit limits keep a hostile peer from holding memory hostage: a
frame longer than :data:`MAX_FRAME_BYTES` (or empty) is rejected
before any payload is read, in both codecs.

Errors are split by whether the byte stream is still usable:

* a well-framed payload that fails to decode (bad UTF-8, bad JSON,
  bad tag) is *recoverable* — the stream is still in sync and the
  server answers with an error reply;
* a framing violation (absurd length, bad magic, connection cut
  inside a declared payload) is *not* — there is no way to find the
  next frame boundary, so the connection must be dropped;
* a connection torn inside a frame *header* is recoverable: no frame
  was ever promised, so a pipelined reader treats it as end-of-stream
  rather than a protocol crime (a half-written header from a dying
  peer must not kill the reader).

:class:`WireError.recoverable` carries that distinction
(:class:`FrameError` is the historical name, kept as an alias).
"""

from __future__ import annotations

import json
import struct
from functools import lru_cache
from typing import Any, Dict, List, Optional, Protocol, Tuple

from ..ipv6.addr6 import int_to_ip6
from ..net.ipv4 import int_to_ip

__all__ = [
    "BINARY_MAGIC",
    "FT_BATCH_REP",
    "FT_BATCH_REP6",
    "FT_BATCH_REQ",
    "FT_BATCH_REQ6",
    "FT_MSG",
    "FrameError",
    "MAX_FRAME_BYTES",
    "WireError",
    "WireSocket",
    "decode_batch_reply",
    "decode_batch_reply6",
    "decode_batch_request",
    "decode_batch_request6",
    "decode_binary_frame",
    "decode_frame",
    "decode_msg_payload",
    "decode_record",
    "decode_record6",
    "encode_batch_reply_frame",
    "encode_batch_reply_frame6",
    "encode_batch_request",
    "encode_batch_request6",
    "encode_binary_frame",
    "encode_frame",
    "encode_msg_frame",
    "encode_msg_payload",
    "pack_degraded",
    "pack_degraded6",
    "pack_verdict",
    "pack_verdict6",
    "pack_verdict_wire",
    "pack_verdict_wire6",
    "recv_binary_frame",
    "recv_frame",
    "send_frame",
    "split_batch_reply",
]

#: Hard ceiling on one frame's payload (1 MiB — a 10K-query batch
#: fits with room to spare; nothing legitimate comes close). Applies
#: to both the JSON and the binary codec.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


class WireSocket(Protocol):
    """The slice of the socket API the codec needs — real sockets and
    test doubles both satisfy it structurally."""

    def sendall(self, data: bytes) -> None: ...

    def recv(self, bufsize: int) -> bytes: ...


class WireError(ValueError):
    """A frame violated the protocol.

    ``recoverable`` is True when the byte stream is still in sync (the
    peer can be answered and the connection kept) or already at an end
    (peer cut mid-frame — nothing left to resynchronise); False when
    framing itself broke mid-stream and the connection must be closed.
    """

    def __init__(self, message: str, *, recoverable: bool = False) -> None:
        super().__init__(message)
        self.recoverable = recoverable
        #: For buffered parsers: bytes consumed up to the frame
        #: boundary where the stream resynchronises, when known.
        self.consumed: Optional[int] = None


#: Historical name for :class:`WireError` — the JSON-only codec called
#: every violation a framing error.
FrameError = WireError


def encode_frame(obj: Any, *, max_size: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise ``obj`` into one wire frame (header + JSON payload)."""
    try:
        payload = json.dumps(
            obj, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"unserialisable message: {exc}") from None
    if len(payload) > max_size:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes, max_size: int) -> Any:
    # Both callers check the declared length before reading; this bound
    # keeps the decoder safe even if a new call site forgets to.
    if len(payload) > max_size:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(
            f"undecodable frame payload: {exc}", recoverable=True
        ) from None


def decode_frame(
    buffer: bytes, *, max_size: int = MAX_FRAME_BYTES
) -> Optional[Tuple[Any, int]]:
    """Decode the first complete frame of ``buffer``.

    Returns ``(message, bytes_consumed)``, or ``None`` when the buffer
    holds only an incomplete frame so far (read more and retry).
    Raises :class:`FrameError` on violations.
    """
    if len(buffer) < _HEADER.size:
        return None
    (length,) = _HEADER.unpack_from(buffer)
    _check_length(length, max_size)
    end = _HEADER.size + length
    if len(buffer) < end:
        return None
    try:
        return _decode_payload(buffer[_HEADER.size : end], max_size), end
    except WireError as exc:
        # The boundary held even though the payload did not decode; a
        # buffered parser can skip to ``end`` and stay on the stream.
        exc.consumed = end
        raise


def _check_length(length: int, max_size: int) -> None:
    if length == 0:
        raise FrameError("empty frame payload")
    if length > max_size:
        raise FrameError(
            f"declared frame length {length} exceeds the "
            f"{max_size}-byte limit"
        )


def send_frame(
    sock: WireSocket, obj: Any, *, max_size: int = MAX_FRAME_BYTES
) -> None:
    """Encode ``obj`` and write the full frame to ``sock``."""
    sock.sendall(encode_frame(obj, max_size=max_size))


def _recv_exact(sock: WireSocket, count: int) -> bytes:
    """Read exactly ``count`` bytes; short result means EOF hit.

    Partial reads are accumulated until the count is met, and
    ``EINTR`` is retried explicitly: PEP 475 covers the common case,
    but a signal handler that raises on an exotic platform (or a test
    double that surfaces ``InterruptedError``) must not be confused
    with EOF mid-frame.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 16))
        except InterruptedError:
            continue
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: WireSocket, *, max_size: int = MAX_FRAME_BYTES
) -> Optional[Any]:
    """Read one frame from ``sock``.

    Returns the decoded message, or ``None`` on a clean EOF at a frame
    boundary (the peer hung up between requests). Raises
    :class:`WireError` when the connection dies mid-frame or the frame
    violates the limits; a cut inside the 4-byte header is the
    *recoverable* variant (end-of-stream, not a framing crime).
    """
    header = _recv_exact(sock, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WireError(
            "connection closed inside a frame header", recoverable=True
        )
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_size)
    payload = _recv_exact(sock, length)
    if len(payload) < length:
        raise WireError(
            f"connection closed {length - len(payload)} bytes short of "
            "a full frame"
        )
    return _decode_payload(payload, max_size)


# --------------------------------------------------------------------------
# Binary codec (protocol version 2, negotiated via ``hello``)
# --------------------------------------------------------------------------

#: First byte of every binary frame. A JSON frame's first byte is the
#: high octet of a length below MAX_FRAME_BYTES — always 0x00 — so the
#: magic also disambiguates a stream whose codec state was lost.
BINARY_MAGIC = 0xB1

#: Frame types: a generic tagged message, a packed batch request, and
#: a packed batch reply — the latter two in a 32-bit (v4) and a
#: 128-bit (v6) flavour; the type doubles as the family tag.
FT_MSG = 0
FT_BATCH_REQ = 1
FT_BATCH_REP = 2
FT_BATCH_REQ6 = 3
FT_BATCH_REP6 = 4

_BIN_HEADER = struct.Struct(">BBII")  # magic, ftype, request_id, length
BIN_HEADER_SIZE = _BIN_HEADER.size

# Tagged-value encoding for FT_MSG payloads. Same data model as JSON.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03  # >q
_T_BIGINT = 0x04  # u32 length + ASCII decimal digits
_T_FLOAT = 0x05  # >d, non-finite rejected (JSON parity)
_T_SSTR = 0x06  # u8 length + UTF-8
_T_STR = 0x07  # u32 length + UTF-8
_T_LIST = 0x08  # u32 count, then count values
_T_DICT = 0x09  # u32 count, then count (str key, value) pairs

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_Q = struct.Struct(">q")
_D = struct.Struct(">d")
_U32 = struct.Struct(">I")


def encode_msg_payload(obj: Any, *, max_size: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one JSON-model value into the tagged binary form.

    Raises the non-recoverable :class:`WireError` on unserialisable
    values (same contract as :func:`encode_frame`: our bug, not the
    peer's).
    """
    out = bytearray()
    stack: List[Any] = [obj]
    while stack:
        item = stack.pop()
        kind = type(item)
        if item is None:
            out.append(_T_NONE)
        elif kind is bool:
            out.append(_T_TRUE if item else _T_FALSE)
        elif kind is int:
            if _I64_MIN <= item <= _I64_MAX:
                out.append(_T_INT64)
                out += _Q.pack(item)
            else:
                digits = str(item).encode("ascii")
                out.append(_T_BIGINT)
                out += _U32.pack(len(digits))
                out += digits
        elif kind is float:
            if item != item or item in (float("inf"), float("-inf")):
                raise WireError(f"unserialisable message: non-finite {item!r}")
            out.append(_T_FLOAT)
            out += _D.pack(item)
        elif kind is str:
            raw = item.encode("utf-8")
            if len(raw) < 256:
                out.append(_T_SSTR)
                out.append(len(raw))
            else:
                out.append(_T_STR)
                out += _U32.pack(len(raw))
            out += raw
        elif kind is list or kind is tuple:
            out.append(_T_LIST)
            out += _U32.pack(len(item))
            stack.extend(reversed(item))
        elif kind is dict:
            out.append(_T_DICT)
            out += _U32.pack(len(item))
            for key, value in reversed(list(item.items())):
                if type(key) is not str:
                    raise WireError(
                        f"unserialisable message: non-str key {key!r}"
                    )
                stack.append(value)
                stack.append(key)
        elif isinstance(item, dict):
            stack.append(dict(item))  # subclass: re-dispatch on the base
        elif isinstance(item, (list, tuple)):
            stack.append(list(item))
        elif isinstance(item, str):
            stack.append(str(item))
        elif isinstance(item, float):
            stack.append(float(item))
        elif isinstance(item, int):
            stack.append(int(item))
        else:
            raise WireError(f"unserialisable message: {kind.__name__}")
        if len(out) > max_size:
            raise WireError(
                f"frame payload of {len(out)} bytes exceeds the "
                f"{max_size}-byte limit"
            )
    return bytes(out)


def _need(payload: bytes, pos: int, count: int) -> None:
    if pos + count > len(payload):
        raise WireError("truncated binary message payload", recoverable=True)


def decode_msg_payload(
    payload: bytes, *, max_size: int = MAX_FRAME_BYTES
) -> Any:
    """Decode one tagged binary value; inverse of
    :func:`encode_msg_payload`.

    Every malformation raises the *recoverable* :class:`WireError` —
    the frame boundary was already known, so the stream stays in sync.
    """
    if len(payload) > max_size:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    size = len(payload)
    pos = 0
    # Container frames: [is_dict, remaining_count, container, pending_key]
    frames: List[List[Any]] = []
    root: Any = None
    have_root = False
    while True:
        _need(payload, pos, 1)
        tag = payload[pos]
        pos += 1
        value: Any
        opened = False
        if tag == _T_NONE:
            value = None
        elif tag == _T_TRUE:
            value = True
        elif tag == _T_FALSE:
            value = False
        elif tag == _T_INT64:
            _need(payload, pos, 8)
            (value,) = _Q.unpack_from(payload, pos)
            pos += 8
        elif tag == _T_BIGINT:
            _need(payload, pos, 4)
            (length,) = _U32.unpack_from(payload, pos)
            pos += 4
            _need(payload, pos, length)
            digits = payload[pos : pos + length]
            pos += length
            try:
                value = int(digits.decode("ascii"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise WireError(
                    f"undecodable bigint: {exc}", recoverable=True
                ) from None
        elif tag == _T_FLOAT:
            _need(payload, pos, 8)
            (value,) = _D.unpack_from(payload, pos)
            pos += 8
        elif tag == _T_SSTR or tag == _T_STR:
            if tag == _T_SSTR:
                _need(payload, pos, 1)
                length = payload[pos]
                pos += 1
            else:
                _need(payload, pos, 4)
                (length,) = _U32.unpack_from(payload, pos)
                pos += 4
            _need(payload, pos, length)
            try:
                value = payload[pos : pos + length].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireError(
                    f"undecodable string: {exc}", recoverable=True
                ) from None
            pos += length
        elif tag == _T_LIST or tag == _T_DICT:
            _need(payload, pos, 4)
            (count,) = _U32.unpack_from(payload, pos)
            pos += 4
            # Each element needs at least one tag byte (two for a
            # dict's key+value) — bound count by the bytes remaining.
            if count > (size - pos):
                raise WireError(
                    "binary container declares more elements than the "
                    "payload can hold",
                    recoverable=True,
                )
            if tag == _T_LIST:
                value = []
                if count:
                    frames.append([False, count, value, None])
                    opened = True
            else:
                value = {}
                if count:
                    frames.append([True, count, value, None])
                    opened = True
        else:
            raise WireError(
                f"unknown binary tag 0x{tag:02x}", recoverable=True
            )
        if opened:
            continue
        # ``value`` is complete: attach it upward, popping any
        # containers it completes.
        while True:
            if not frames:
                root = value
                have_root = True
                break
            frame = frames[-1]
            if frame[0]:
                if frame[3] is None:
                    if type(value) is not str:
                        raise WireError(
                            "binary dict key is not a string",
                            recoverable=True,
                        )
                    frame[3] = value
                    break
                frame[2][frame[3]] = value
                frame[3] = None
            else:
                frame[2].append(value)
            frame[1] -= 1
            if frame[1]:
                break
            frames.pop()
            value = frame[2]
        if have_root:
            break
    if pos != size:
        raise WireError(
            f"{size - pos} trailing bytes after binary message",
            recoverable=True,
        )
    return root


def encode_binary_frame(
    ftype: int,
    request_id: int,
    payload: bytes,
    *,
    max_size: int = MAX_FRAME_BYTES,
) -> bytes:
    """Wrap ``payload`` in a binary frame header."""
    if not payload:
        raise WireError("empty frame payload")
    if len(payload) > max_size:
        raise WireError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_size}-byte limit"
        )
    return (
        _BIN_HEADER.pack(
            BINARY_MAGIC, ftype, request_id & 0xFFFFFFFF, len(payload)
        )
        + payload
    )


def encode_msg_frame(
    obj: Any, request_id: int = 0, *, max_size: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialise ``obj`` into one complete FT_MSG frame."""
    return encode_binary_frame(
        FT_MSG,
        request_id,
        encode_msg_payload(obj, max_size=max_size),
        max_size=max_size,
    )


def decode_binary_frame(
    buffer: bytes, *, max_size: int = MAX_FRAME_BYTES
) -> Optional[Tuple[int, int, bytes, int]]:
    """Decode the first complete binary frame of ``buffer``.

    Returns ``(frame_type, request_id, payload, bytes_consumed)``, or
    ``None`` while the buffer holds only an incomplete frame. The
    payload is *not* interpreted — the caller dispatches on the frame
    type (and can answer an unknown type without losing sync, because
    the length was valid). Framing violations (bad magic, bad length)
    raise the fatal :class:`WireError`.
    """
    if len(buffer) < BIN_HEADER_SIZE:
        return None
    magic, ftype, request_id, length = _BIN_HEADER.unpack_from(buffer)
    if magic != BINARY_MAGIC:
        raise WireError(f"bad frame magic 0x{magic:02x}")
    _check_length(length, max_size)
    end = BIN_HEADER_SIZE + length
    if len(buffer) < end:
        return None
    return ftype, request_id, bytes(buffer[BIN_HEADER_SIZE:end]), end


def recv_binary_frame(
    sock: WireSocket, *, max_size: int = MAX_FRAME_BYTES
) -> Optional[Tuple[int, int, bytes]]:
    """Read one binary frame from a blocking socket.

    Returns ``(frame_type, request_id, payload)``, ``None`` on clean
    EOF at a frame boundary, and raises :class:`WireError` otherwise —
    recoverable when the connection died inside the header, fatal when
    the framing itself is wrong.
    """
    header = _recv_exact(sock, BIN_HEADER_SIZE)
    if not header:
        return None
    if len(header) < BIN_HEADER_SIZE:
        raise WireError(
            "connection closed inside a frame header", recoverable=True
        )
    magic, ftype, request_id, length = _BIN_HEADER.unpack(header)
    if magic != BINARY_MAGIC:
        raise WireError(f"bad frame magic 0x{magic:02x}")
    _check_length(length, max_size)
    payload = _recv_exact(sock, length)
    if len(payload) < length:
        raise WireError(
            f"connection closed {length - len(payload)} bytes short of "
            "a full frame"
        )
    return ftype, request_id, payload


# -- packed batch request ---------------------------------------------------

_BATCH_REQ_REC = struct.Struct(">IBi")  # ip, has_day, day


def encode_batch_request(
    pairs: List[Tuple[int, Optional[int]]],
    request_id: int,
    *,
    max_size: int = MAX_FRAME_BYTES,
) -> bytes:
    """Pack ``(ip_int, day_or_None)`` pairs into one FT_BATCH_REQ frame.

    Raises the recoverable :class:`WireError` when a value does not fit
    the packed layout (caller falls back to an FT_MSG batch).
    """
    parts = [_U32.pack(len(pairs))]
    pack = _BATCH_REQ_REC.pack
    try:
        for ip, day in pairs:
            if day is None:
                parts.append(pack(ip, 0, 0))
            else:
                parts.append(pack(ip, 1, day))
    except struct.error as exc:
        raise WireError(
            f"batch not binary-packable: {exc}", recoverable=True
        ) from None
    return encode_binary_frame(
        FT_BATCH_REQ, request_id, b"".join(parts), max_size=max_size
    )


def decode_batch_request(payload: bytes) -> List[Tuple[int, Optional[int]]]:
    """Unpack an FT_BATCH_REQ payload into ``(ip, day_or_None)`` pairs."""
    if len(payload) < 4:
        raise WireError("truncated batch request", recoverable=True)
    (count,) = _U32.unpack_from(payload)
    if len(payload) != 4 + count * _BATCH_REQ_REC.size:
        raise WireError(
            "batch request length does not match its declared count",
            recoverable=True,
        )
    pairs: List[Tuple[int, Optional[int]]] = []
    append = pairs.append
    for ip, has_day, day in _BATCH_REQ_REC.iter_unpack(
        memoryview(payload)[4:]
    ):
        if has_day > 1:
            raise WireError(
                f"bad has_day flag {has_day} in batch request",
                recoverable=True,
            )
        append((ip, day if has_day else None))
    return pairs


# -- packed batch reply -----------------------------------------------------

#: Record kinds inside an FT_BATCH_REP payload.
REC_VERDICT = 0
REC_DEGRADED = 1

_VERDICT_FIXED = struct.Struct(">BIiBBBIIIQB")
# kind, ip, day, flags, action, reuse_kind, users, asn, epoch, seq, n_lists
_DEGRADED_FIXED = struct.Struct(">BIBiI")
# kind, ip, has_day, day, shard

_FLAG_LISTED = 1
_FLAG_NATED = 2
_FLAG_DYNAMIC = 4
_FLAG_UNJUST = 8

_ACTION_TO_CODE = {"ignore": 0, "greylist": 1, "block": 2}
_CODE_TO_ACTION = {v: k for k, v in _ACTION_TO_CODE.items()}
_REUSE_TO_CODE = {"": 0, "nat": 1, "dynamic": 2, "nat+dynamic": 3}
_CODE_TO_REUSE = {v: k for k, v in _REUSE_TO_CODE.items()}

_int_to_ip_cached = lru_cache(maxsize=1 << 16)(int_to_ip)


def _pack_verdict_fields(
    ip: int,
    day: int,
    listed: bool,
    lists: Any,
    nated: bool,
    dynamic: bool,
    unjust: bool,
    reuse_kind: str,
    users: int,
    asn: int,
    action: str,
    epoch: int,
    seq: int,
) -> bytes:
    action_code = _ACTION_TO_CODE.get(action)
    reuse_code = _REUSE_TO_CODE.get(reuse_kind)
    if action_code is None or reuse_code is None:
        raise WireError(
            f"verdict not binary-packable: action={action!r} "
            f"reuse_kind={reuse_kind!r}",
            recoverable=True,
        )
    flags = (
        (_FLAG_LISTED if listed else 0)
        | (_FLAG_NATED if nated else 0)
        | (_FLAG_DYNAMIC if dynamic else 0)
        | (_FLAG_UNJUST if unjust else 0)
    )
    try:
        head = _VERDICT_FIXED.pack(
            REC_VERDICT, ip, day, flags, action_code, reuse_code,
            users, asn, epoch, seq, len(lists),
        )
    except struct.error as exc:
        raise WireError(
            f"verdict not binary-packable: {exc}", recoverable=True
        ) from None
    if not lists:
        return head
    parts = [head]
    for list_id in lists:
        raw = str(list_id).encode("utf-8")
        if len(raw) > 255:
            raise WireError(
                f"verdict not binary-packable: list id of {len(raw)} bytes",
                recoverable=True,
            )
        parts.append(bytes((len(raw),)))
        parts.append(raw)
    return b"".join(parts)


def pack_verdict(verdict: Any) -> bytes:
    """Pack one engine :class:`~repro.service.engine.Verdict` (any
    object with its attributes) into a batch-reply record."""
    return _pack_verdict_fields(
        verdict.ip, verdict.day, verdict.listed, verdict.lists,
        verdict.nated, verdict.dynamic, verdict.unjust,
        verdict.reuse_kind, verdict.users, verdict.asn, verdict.action,
        verdict.epoch, verdict.seq,
    )


def pack_verdict_wire(entry: Dict[str, Any]) -> bytes:
    """Pack a verdict already in wire-dict form (dotted-quad ip) into a
    batch-reply record — the Router's JSON-upstream → binary-downstream
    conversion."""
    from ..net.ipv4 import ip_to_int

    try:
        return _pack_verdict_fields(
            ip_to_int(entry["ip"]), entry["day"], bool(entry["listed"]),
            entry["lists"], bool(entry["nated"]), bool(entry["dynamic"]),
            bool(entry["unjust"]), entry["reuse_kind"], entry["users"],
            entry["asn"], entry["action"], entry["epoch"], entry["seq"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, WireError):
            raise
        raise WireError(
            f"verdict not binary-packable: {exc}", recoverable=True
        ) from None


def pack_degraded(
    ip: int, day: Optional[int], shard: int, error: str
) -> bytes:
    """Pack one degraded (shard-unavailable) batch-reply record."""
    raw = error.encode("utf-8")
    if len(raw) > 255:
        raw = raw[:255]
    try:
        head = _DEGRADED_FIXED.pack(
            REC_DEGRADED, ip, 0 if day is None else 1,
            0 if day is None else day, shard,
        )
    except struct.error as exc:
        raise WireError(
            f"degraded entry not binary-packable: {exc}", recoverable=True
        ) from None
    return head + bytes((len(raw),)) + raw


def encode_batch_reply_frame(
    records: List[bytes],
    request_id: int,
    *,
    max_size: int = MAX_FRAME_BYTES,
) -> bytes:
    """Assemble packed records into one FT_BATCH_REP frame."""
    payload = _U32.pack(len(records)) + b"".join(records)
    return encode_binary_frame(
        FT_BATCH_REP, request_id, payload, max_size=max_size
    )


def _record_span(payload: bytes, pos: int, size: int) -> int:
    """Return the end offset of the record starting at ``pos``."""
    kind = payload[pos]
    if kind == REC_VERDICT:
        end = pos + _VERDICT_FIXED.size
        _need(payload, pos, _VERDICT_FIXED.size)
        n_lists = payload[end - 1]
        for _ in range(n_lists):
            _need(payload, end, 1)
            end += 1 + payload[end]
    elif kind == REC_DEGRADED:
        end = pos + _DEGRADED_FIXED.size
        _need(payload, pos, _DEGRADED_FIXED.size)
        _need(payload, end, 1)
        end += 1 + payload[end]
    else:
        raise WireError(
            f"unknown batch record kind {kind}", recoverable=True
        )
    if end > size:
        raise WireError("truncated batch reply record", recoverable=True)
    return end


def split_batch_reply(payload: bytes) -> List[bytes]:
    """Slice an FT_BATCH_REP payload into its raw records, validated
    but not decoded — the Router merges shard replies by concatenating
    these slices without ever building verdict dicts."""
    if len(payload) < 4:
        raise WireError("truncated batch reply", recoverable=True)
    (count,) = _U32.unpack_from(payload)
    size = len(payload)
    records: List[bytes] = []
    pos = 4
    for _ in range(count):
        _need(payload, pos, 1)
        end = _record_span(payload, pos, size)
        records.append(payload[pos:end])
        pos = end
    if pos != size:
        raise WireError(
            f"{size - pos} trailing bytes after batch reply",
            recoverable=True,
        )
    return records


def _decode_verdict_record(payload: bytes, pos: int) -> Tuple[Dict[str, Any], int]:
    if pos + _VERDICT_FIXED.size > len(payload):
        raise WireError("truncated batch reply record", recoverable=True)
    (
        _kind, ip, day, flags, action_code, reuse_code,
        users, asn, epoch, seq, n_lists,
    ) = _VERDICT_FIXED.unpack_from(payload, pos)
    pos += _VERDICT_FIXED.size
    lists: List[str] = []
    size = len(payload)
    for _ in range(n_lists):
        if pos >= size:
            raise WireError("truncated batch reply record", recoverable=True)
        length = payload[pos]
        pos += 1
        if pos + length > size:
            raise WireError("truncated batch reply record", recoverable=True)
        try:
            lists.append(payload[pos : pos + length].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise WireError(
                f"undecodable list id: {exc}", recoverable=True
            ) from None
        pos += length
    action = _CODE_TO_ACTION.get(action_code)
    reuse_kind = _CODE_TO_REUSE.get(reuse_code)
    if action is None or reuse_kind is None:
        raise WireError(
            f"bad verdict codes action={action_code} reuse={reuse_code}",
            recoverable=True,
        )
    entry = {
        "ip": _int_to_ip_cached(ip),
        "day": day,
        "listed": bool(flags & _FLAG_LISTED),
        "lists": lists,
        "nated": bool(flags & _FLAG_NATED),
        "dynamic": bool(flags & _FLAG_DYNAMIC),
        "unjust": bool(flags & _FLAG_UNJUST),
        "reuse_kind": reuse_kind,
        "users": users,
        "asn": asn,
        "action": action,
        "epoch": epoch,
        "seq": seq,
    }
    return entry, pos


def _decode_degraded_record(
    payload: bytes, pos: int
) -> Tuple[Dict[str, Any], int]:
    if pos + _DEGRADED_FIXED.size > len(payload):
        raise WireError("truncated batch reply record", recoverable=True)
    _kind, ip, has_day, day, shard = _DEGRADED_FIXED.unpack_from(payload, pos)
    pos += _DEGRADED_FIXED.size
    size = len(payload)
    if pos >= size:
        raise WireError("truncated batch reply record", recoverable=True)
    length = payload[pos]
    pos += 1
    if pos + length > size:
        raise WireError("truncated batch reply record", recoverable=True)
    try:
        error = payload[pos : pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(
            f"undecodable error text: {exc}", recoverable=True
        ) from None
    pos += length
    entry = {
        "ip": _int_to_ip_cached(ip),
        "day": day if has_day else None,
        "error": error,
        "shard": shard,
    }
    return entry, pos


def decode_record(record: bytes) -> Dict[str, Any]:
    """Decode one packed record (a :func:`split_batch_reply` slice)
    into its wire dict — the Router's binary-upstream →
    JSON-downstream conversion."""
    if not record:
        raise WireError("empty batch record", recoverable=True)
    kind = record[0]
    if kind == REC_VERDICT:
        entry, pos = _decode_verdict_record(record, 0)
    elif kind == REC_DEGRADED:
        entry, pos = _decode_degraded_record(record, 0)
    else:
        raise WireError(
            f"unknown batch record kind {kind}", recoverable=True
        )
    if pos != len(record):
        raise WireError(
            f"{len(record) - pos} trailing bytes after batch record",
            recoverable=True,
        )
    return entry


def decode_batch_reply(payload: bytes) -> List[Dict[str, Any]]:
    """Decode an FT_BATCH_REP payload into the same wire dicts the JSON
    codec produces — field-for-field equal, so clients cannot tell the
    codecs apart by content."""
    if len(payload) < 4:
        raise WireError("truncated batch reply", recoverable=True)
    (count,) = _U32.unpack_from(payload)
    size = len(payload)
    entries: List[Dict[str, Any]] = []
    pos = 4
    for _ in range(count):
        if pos >= size:
            raise WireError("truncated batch reply", recoverable=True)
        kind = payload[pos]
        if kind == REC_VERDICT:
            entry, pos = _decode_verdict_record(payload, pos)
        elif kind == REC_DEGRADED:
            entry, pos = _decode_degraded_record(payload, pos)
        else:
            raise WireError(
                f"unknown batch record kind {kind}", recoverable=True
            )
        entries.append(entry)
    if pos != size:
        raise WireError(
            f"{size - pos} trailing bytes after batch reply",
            recoverable=True,
        )
    return entries


# -- v6 packed batch records ------------------------------------------------
#
# Same record shapes as the v4 batch path with the address field
# widened to 16 big-endian bytes. Kept as parallel functions rather
# than a width parameter: the v4 pack/unpack calls are the hottest
# code in the serving plane and must not grow a branch.

_BATCH_REQ6_REC = struct.Struct(">16sBi")  # ip, has_day, day

_VERDICT6_FIXED = struct.Struct(">B16siBBBIIIQB")
# kind, ip, day, flags, action, reuse_kind, users, asn, epoch, seq, n_lists
_DEGRADED6_FIXED = struct.Struct(">B16sBiI")
# kind, ip, has_day, day, shard

_int_to_ip6_cached = lru_cache(maxsize=1 << 16)(int_to_ip6)


def _ip6_raw(ip: int) -> bytes:
    try:
        return ip.to_bytes(16, "big")
    except (AttributeError, OverflowError) as exc:
        raise WireError(
            f"not a v6-packable address: {ip!r} ({exc})", recoverable=True
        ) from None


def encode_batch_request6(
    pairs: List[Tuple[int, Optional[int]]],
    request_id: int,
    *,
    max_size: int = MAX_FRAME_BYTES,
) -> bytes:
    """Pack ``(ip6_int, day_or_None)`` pairs into one FT_BATCH_REQ6
    frame.

    Raises the recoverable :class:`WireError` when a value does not fit
    the packed layout (caller falls back to an FT_MSG batch).
    """
    parts = [_U32.pack(len(pairs))]
    pack = _BATCH_REQ6_REC.pack
    try:
        for ip, day in pairs:
            if day is None:
                parts.append(pack(_ip6_raw(ip), 0, 0))
            else:
                parts.append(pack(_ip6_raw(ip), 1, day))
    except struct.error as exc:
        raise WireError(
            f"batch not binary-packable: {exc}", recoverable=True
        ) from None
    return encode_binary_frame(
        FT_BATCH_REQ6, request_id, b"".join(parts), max_size=max_size
    )


def decode_batch_request6(payload: bytes) -> List[Tuple[int, Optional[int]]]:
    """Unpack an FT_BATCH_REQ6 payload into ``(ip, day_or_None)`` pairs."""
    if len(payload) < 4:
        raise WireError("truncated batch request", recoverable=True)
    (count,) = _U32.unpack_from(payload)
    if len(payload) != 4 + count * _BATCH_REQ6_REC.size:
        raise WireError(
            "batch request length does not match its declared count",
            recoverable=True,
        )
    pairs: List[Tuple[int, Optional[int]]] = []
    append = pairs.append
    from_bytes = int.from_bytes
    for raw, has_day, day in _BATCH_REQ6_REC.iter_unpack(
        memoryview(payload)[4:]
    ):
        if has_day > 1:
            raise WireError(
                f"bad has_day flag {has_day} in batch request",
                recoverable=True,
            )
        append((from_bytes(raw, "big"), day if has_day else None))
    return pairs


def _pack_verdict_fields6(
    ip: int,
    day: int,
    listed: bool,
    lists: Any,
    nated: bool,
    dynamic: bool,
    unjust: bool,
    reuse_kind: str,
    users: int,
    asn: int,
    action: str,
    epoch: int,
    seq: int,
) -> bytes:
    action_code = _ACTION_TO_CODE.get(action)
    reuse_code = _REUSE_TO_CODE.get(reuse_kind)
    if action_code is None or reuse_code is None:
        raise WireError(
            f"verdict not binary-packable: action={action!r} "
            f"reuse_kind={reuse_kind!r}",
            recoverable=True,
        )
    flags = (
        (_FLAG_LISTED if listed else 0)
        | (_FLAG_NATED if nated else 0)
        | (_FLAG_DYNAMIC if dynamic else 0)
        | (_FLAG_UNJUST if unjust else 0)
    )
    try:
        head = _VERDICT6_FIXED.pack(
            REC_VERDICT, _ip6_raw(ip), day, flags, action_code,
            reuse_code, users, asn, epoch, seq, len(lists),
        )
    except struct.error as exc:
        raise WireError(
            f"verdict not binary-packable: {exc}", recoverable=True
        ) from None
    if not lists:
        return head
    parts = [head]
    for list_id in lists:
        raw = str(list_id).encode("utf-8")
        if len(raw) > 255:
            raise WireError(
                f"verdict not binary-packable: list id of {len(raw)} bytes",
                recoverable=True,
            )
        parts.append(bytes((len(raw),)))
        parts.append(raw)
    return b"".join(parts)


def pack_verdict6(verdict: Any) -> bytes:
    """Pack one v6 engine verdict into an FT_BATCH_REP6 record."""
    return _pack_verdict_fields6(
        verdict.ip, verdict.day, verdict.listed, verdict.lists,
        verdict.nated, verdict.dynamic, verdict.unjust,
        verdict.reuse_kind, verdict.users, verdict.asn, verdict.action,
        verdict.epoch, verdict.seq,
    )


def pack_verdict_wire6(entry: Dict[str, Any]) -> bytes:
    """Pack a v6 verdict already in wire-dict form (text address) into
    an FT_BATCH_REP6 record."""
    from ..ipv6.addr6 import ip6_to_int

    try:
        return _pack_verdict_fields6(
            ip6_to_int(entry["ip"]), entry["day"], bool(entry["listed"]),
            entry["lists"], bool(entry["nated"]), bool(entry["dynamic"]),
            bool(entry["unjust"]), entry["reuse_kind"], entry["users"],
            entry["asn"], entry["action"], entry["epoch"], entry["seq"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, WireError):
            raise
        raise WireError(
            f"verdict not binary-packable: {exc}", recoverable=True
        ) from None


def pack_degraded6(
    ip: int, day: Optional[int], shard: int, error: str
) -> bytes:
    """Pack one degraded (shard-unavailable) FT_BATCH_REP6 record."""
    raw = error.encode("utf-8")
    if len(raw) > 255:
        raw = raw[:255]
    try:
        head = _DEGRADED6_FIXED.pack(
            REC_DEGRADED, _ip6_raw(ip), 0 if day is None else 1,
            0 if day is None else day, shard,
        )
    except struct.error as exc:
        raise WireError(
            f"degraded entry not binary-packable: {exc}", recoverable=True
        ) from None
    return head + bytes((len(raw),)) + raw


def encode_batch_reply_frame6(
    records: List[bytes],
    request_id: int,
    *,
    max_size: int = MAX_FRAME_BYTES,
) -> bytes:
    """Assemble packed v6 records into one FT_BATCH_REP6 frame."""
    payload = _U32.pack(len(records)) + b"".join(records)
    return encode_binary_frame(
        FT_BATCH_REP6, request_id, payload, max_size=max_size
    )


def _record_span6(payload: bytes, pos: int, size: int) -> int:
    """Return the end offset of the v6 record starting at ``pos``."""
    kind = payload[pos]
    if kind == REC_VERDICT:
        end = pos + _VERDICT6_FIXED.size
        _need(payload, pos, _VERDICT6_FIXED.size)
        n_lists = payload[end - 1]
        for _ in range(n_lists):
            _need(payload, end, 1)
            end += 1 + payload[end]
    elif kind == REC_DEGRADED:
        end = pos + _DEGRADED6_FIXED.size
        _need(payload, pos, _DEGRADED6_FIXED.size)
        _need(payload, end, 1)
        end += 1 + payload[end]
    else:
        raise WireError(
            f"unknown batch record kind {kind}", recoverable=True
        )
    if end > size:
        raise WireError("truncated batch reply record", recoverable=True)
    return end


def split_batch_reply6(payload: bytes) -> List[bytes]:
    """Slice an FT_BATCH_REP6 payload into its raw records, validated
    but not decoded (the Router's merge path)."""
    if len(payload) < 4:
        raise WireError("truncated batch reply", recoverable=True)
    (count,) = _U32.unpack_from(payload)
    size = len(payload)
    records: List[bytes] = []
    pos = 4
    for _ in range(count):
        _need(payload, pos, 1)
        end = _record_span6(payload, pos, size)
        records.append(payload[pos:end])
        pos = end
    if pos != size:
        raise WireError(
            f"{size - pos} trailing bytes after batch reply",
            recoverable=True,
        )
    return records


def _decode_verdict_record6(
    payload: bytes, pos: int
) -> Tuple[Dict[str, Any], int]:
    if pos + _VERDICT6_FIXED.size > len(payload):
        raise WireError("truncated batch reply record", recoverable=True)
    (
        _kind, raw_ip, day, flags, action_code, reuse_code,
        users, asn, epoch, seq, n_lists,
    ) = _VERDICT6_FIXED.unpack_from(payload, pos)
    pos += _VERDICT6_FIXED.size
    lists: List[str] = []
    size = len(payload)
    for _ in range(n_lists):
        if pos >= size:
            raise WireError("truncated batch reply record", recoverable=True)
        length = payload[pos]
        pos += 1
        if pos + length > size:
            raise WireError("truncated batch reply record", recoverable=True)
        try:
            lists.append(payload[pos : pos + length].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise WireError(
                f"undecodable list id: {exc}", recoverable=True
            ) from None
        pos += length
    action = _CODE_TO_ACTION.get(action_code)
    reuse_kind = _CODE_TO_REUSE.get(reuse_code)
    if action is None or reuse_kind is None:
        raise WireError(
            f"bad verdict codes action={action_code} reuse={reuse_code}",
            recoverable=True,
        )
    entry = {
        "ip": _int_to_ip6_cached(int.from_bytes(raw_ip, "big")),
        "day": day,
        "listed": bool(flags & _FLAG_LISTED),
        "lists": lists,
        "nated": bool(flags & _FLAG_NATED),
        "dynamic": bool(flags & _FLAG_DYNAMIC),
        "unjust": bool(flags & _FLAG_UNJUST),
        "reuse_kind": reuse_kind,
        "users": users,
        "asn": asn,
        "action": action,
        "epoch": epoch,
        "seq": seq,
    }
    return entry, pos


def _decode_degraded_record6(
    payload: bytes, pos: int
) -> Tuple[Dict[str, Any], int]:
    if pos + _DEGRADED6_FIXED.size > len(payload):
        raise WireError("truncated batch reply record", recoverable=True)
    _kind, raw_ip, has_day, day, shard = _DEGRADED6_FIXED.unpack_from(
        payload, pos
    )
    pos += _DEGRADED6_FIXED.size
    size = len(payload)
    if pos >= size:
        raise WireError("truncated batch reply record", recoverable=True)
    length = payload[pos]
    pos += 1
    if pos + length > size:
        raise WireError("truncated batch reply record", recoverable=True)
    try:
        error = payload[pos : pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(
            f"undecodable error text: {exc}", recoverable=True
        ) from None
    pos += length
    entry = {
        "ip": _int_to_ip6_cached(int.from_bytes(raw_ip, "big")),
        "day": day if has_day else None,
        "error": error,
        "shard": shard,
    }
    return entry, pos


def decode_record6(record: bytes) -> Dict[str, Any]:
    """Decode one packed v6 record (a :func:`split_batch_reply6` slice)
    into its wire dict."""
    if not record:
        raise WireError("empty batch record", recoverable=True)
    kind = record[0]
    if kind == REC_VERDICT:
        entry, pos = _decode_verdict_record6(record, 0)
    elif kind == REC_DEGRADED:
        entry, pos = _decode_degraded_record6(record, 0)
    else:
        raise WireError(
            f"unknown batch record kind {kind}", recoverable=True
        )
    if pos != len(record):
        raise WireError(
            f"{len(record) - pos} trailing bytes after batch record",
            recoverable=True,
        )
    return entry


def decode_batch_reply6(payload: bytes) -> List[Dict[str, Any]]:
    """Decode an FT_BATCH_REP6 payload into the same wire dicts the
    JSON codec produces for v6 queries."""
    if len(payload) < 4:
        raise WireError("truncated batch reply", recoverable=True)
    (count,) = _U32.unpack_from(payload)
    size = len(payload)
    entries: List[Dict[str, Any]] = []
    pos = 4
    for _ in range(count):
        if pos >= size:
            raise WireError("truncated batch reply", recoverable=True)
        kind = payload[pos]
        if kind == REC_VERDICT:
            entry, pos = _decode_verdict_record6(payload, pos)
        elif kind == REC_DEGRADED:
            entry, pos = _decode_degraded_record6(payload, pos)
        else:
            raise WireError(
                f"unknown batch record kind {kind}", recoverable=True
            )
        entries.append(entry)
    if pos != size:
        raise WireError(
            f"{size - pos} trailing bytes after batch reply",
            recoverable=True,
        )
    return entries
