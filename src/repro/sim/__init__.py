"""Deterministic discrete-event simulation fabric."""

from .clock import DAY, HOUR, MINUTE, SECOND, SimClock
from .events import ScheduledEvent, Scheduler
from .rng import RngHub, weighted_index, zipf_weights
from .udp import Datagram, Endpoint, FabricStats, UdpFabric
from .nat import HostStack, NatBehaviour, NatGateway, NatStats, Socket
from .realtime import LiveLoop, LiveUdpSocket

__all__ = [
    "DAY",
    "HOUR",
    "MINUTE",
    "SECOND",
    "SimClock",
    "ScheduledEvent",
    "Scheduler",
    "RngHub",
    "weighted_index",
    "zipf_weights",
    "Datagram",
    "Endpoint",
    "FabricStats",
    "UdpFabric",
    "HostStack",
    "NatBehaviour",
    "NatGateway",
    "NatStats",
    "Socket",
    "LiveLoop",
    "LiveUdpSocket",
]
