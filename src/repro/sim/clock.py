"""Simulated time.

All simulators share one :class:`SimClock`. Time is a float count of
seconds since the scenario epoch; helpers convert to the day/hour units
the paper reports in ("removed within nine days", "pings every hour").
"""

from __future__ import annotations

__all__ = ["SECOND", "MINUTE", "HOUR", "DAY", "SimClock"]

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0


class SimClock:
    """Monotonic simulated clock.

    Only the scheduler advances it; everything else reads ``now``.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before epoch: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since epoch."""
        return self._now

    @property
    def now_days(self) -> float:
        """Current time expressed in days."""
        return self._now / DAY

    @property
    def now_hours(self) -> float:
        """Current time expressed in hours."""
        return self._now / HOUR

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Moving backwards is a scheduler bug and raises immediately —
        a silently time-travelling simulation produces unexplainable
        measurement artefacts.
        """
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards: {when} < {self._now}"
            )
        self._now = float(when)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}s / day {self.now_days:.2f})"
