"""Discrete-event scheduler driving the simulated clock.

A single binary-heap run queue; ties break on insertion order so runs
are fully deterministic under a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .clock import SimClock

__all__ = ["Scheduler", "ScheduledEvent"]

Callback = Callable[[], None]


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, which keeps cancel O(1).
    """

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callback) -> None:
        self.when = when
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        self.cancelled = True
        self.callback = None


class Scheduler:
    """Heap-based discrete-event loop.

    The scheduler owns the clock: callbacks observe ``scheduler.now``
    equal to their scheduled firing time.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._executed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events still queued (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Callbacks run so far (diagnostics)."""
        return self._executed

    def at(self, when: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        event = ScheduledEvent(when, self._seq, callback)
        heapq.heappush(self._heap, (when, self._seq, event))
        self._seq += 1
        return event

    def after(self, delay: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, callback)

    def every(
        self,
        interval: float,
        callback: Callback,
        *,
        start_after: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` repeatedly each ``interval`` seconds.

        The recurrence stops once the next firing would land after
        ``until`` (when given). The callback can stop the chain early by
        raising :class:`StopIteration`.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        first = self.clock.now + (
            interval if start_after is None else start_after
        )

        def fire() -> None:
            try:
                callback()
            except StopIteration:
                return
            next_when = self.clock.now + interval
            if until is None or next_when <= until:
                self.at(next_when, fire)

        if until is None or first <= until:
            self.at(first, fire)

    def run_until(self, when: float) -> int:
        """Run events with firing time ≤ ``when``; advance the clock to
        ``when``. Returns the number of callbacks executed."""
        ran = 0
        while self._heap and self._heap[0][0] <= when:
            fire_at, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(fire_at)
            callback = event.callback
            event.callback = None
            assert callback is not None
            callback()
            self._executed += 1
            ran += 1
        self.clock.advance_to(when)
        return ran

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue entirely (or up to ``max_events``)."""
        ran = 0
        while self._heap:
            if max_events is not None and ran >= max_events:
                break
            fire_at, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(fire_at)
            callback = event.callback
            event.callback = None
            assert callback is not None
            callback()
            self._executed += 1
            ran += 1
        return ran
