"""Discrete-event scheduler driving the simulated clock.

A single binary-heap run queue; ties break on insertion order so runs
are fully deterministic under a fixed seed. Every event carries a
unique ``(when, seq)`` key, so the pop order is a total order that does
not depend on the heap's internal array layout — which is what lets
batched insertion (``heapify``) and cancelled-entry compaction reshape
the array without perturbing replay determinism.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from .clock import SimClock

__all__ = ["Scheduler", "ScheduledEvent"]

Callback = Callable[[], None]


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, which keeps cancel O(1). The owning scheduler counts
    live cancellations and compacts the heap when they dominate.
    """

    __slots__ = ("when", "seq", "callback", "cancelled", "_scheduler")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callback,
        scheduler: Optional["Scheduler"] = None,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent."""
        if self.cancelled or self.callback is None:
            # Already cancelled, or already fired — nothing left in the
            # heap to account for.
            self.cancelled = True
            return
        self.cancelled = True
        self.callback = None
        if self._scheduler is not None:
            self._scheduler._note_cancelled()


class Scheduler:
    """Heap-based discrete-event loop.

    The scheduler owns the clock: callbacks observe ``scheduler.now``
    equal to their scheduled firing time.
    """

    # Compact only once this many cancelled entries linger; below it the
    # rebuild costs more than the skips it saves.
    _COMPACT_MIN_CANCELLED = 512

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._executed = 0
        self._cancelled_in_heap = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events still queued (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Callbacks run so far (diagnostics)."""
        return self._executed

    @property
    def compactions(self) -> int:
        """Cancelled-entry heap rebuilds performed (diagnostics)."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """Record one more lazily-cancelled entry; compact if they
        dominate the heap."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self._COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any point: event keys are unique, so the pop order of
        the surviving entries is unchanged. Mutates in place — the run
        loops hold a local alias to the heap list.
        """
        self._heap[:] = [
            entry for entry in self._heap if not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def at(self, when: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        event = ScheduledEvent(when, self._seq, callback, self)
        heapq.heappush(self._heap, (when, self._seq, event))
        self._seq += 1
        return event

    def at_batch(
        self, items: Iterable[Tuple[float, Callback]]
    ) -> List[ScheduledEvent]:
        """Schedule many ``(when, callback)`` pairs in one pass.

        Sequence numbers are assigned in input order, so the firing
        order is exactly what a loop of :meth:`at` calls would produce;
        only the insertion cost changes. For batches comparable to the
        heap size a single ``heapify`` (O(n)) beats n pushes
        (O(n log n)).
        """
        entries: List[Tuple[float, int, ScheduledEvent]] = []
        now = self.clock.now
        seq = self._seq
        for when, callback in items:
            if when < now:
                raise ValueError(
                    f"cannot schedule in the past: {when} < {now}"
                )
            event = ScheduledEvent(when, seq, callback, self)
            entries.append((when, seq, event))
            seq += 1
        self._seq = seq
        heap = self._heap
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return [entry[2] for entry in entries]

    def after(self, delay: float, callback: Callback) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, callback)

    def every(
        self,
        interval: float,
        callback: Callback,
        *,
        start_after: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` repeatedly each ``interval`` seconds.

        The recurrence stops once the next firing would land after
        ``until`` (when given). The callback can stop the chain early by
        raising :class:`StopIteration`.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        first = self.clock.now + (
            interval if start_after is None else start_after
        )

        def fire() -> None:
            try:
                callback()
            except StopIteration:
                return
            next_when = self.clock.now + interval
            if until is None or next_when <= until:
                self.at(next_when, fire)

        if until is None or first <= until:
            self.at(first, fire)

    def run_until(self, when: float) -> int:
        """Run events with firing time ≤ ``when``; advance the clock to
        ``when``. Returns the number of callbacks executed."""
        ran = 0
        heap = self._heap
        pop = heapq.heappop
        advance = self.clock.advance_to
        while heap and heap[0][0] <= when:
            fire_at, _, event = pop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            advance(fire_at)
            callback = event.callback
            event.callback = None
            assert callback is not None
            callback()
            self._executed += 1
            ran += 1
        advance(when)
        return ran

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue entirely (or up to ``max_events``)."""
        ran = 0
        heap = self._heap
        pop = heapq.heappop
        advance = self.clock.advance_to
        while heap:
            if max_events is not None and ran >= max_events:
                break
            fire_at, _, event = pop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            advance(fire_at)
            callback = event.callback
            event.callback = None
            assert callback is not None
            callback()
            self._executed += 1
            ran += 1
        return ran
