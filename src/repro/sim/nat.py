"""Address-translation layer: public hosts, home NATs and CGNs.

Simulated BitTorrent users never touch the fabric directly — they open
*sockets* from either a :class:`HostStack` (public address, one user) or
a :class:`NatGateway` (one public address shared by several users). The
gateway rewrites ports exactly like a real NAT, which is what creates
the multi-port/multi-node_id signature the paper's crawler detects.

NAT behaviours modelled:

* ``FULL_CONE`` — the mapping accepts inbound from anyone (UPnP/NAT-PMP
  port forwards and endpoint-independent NATs). These users are
  reachable by the crawler.
* ``ADDRESS_RESTRICTED`` — inbound is accepted only from addresses the
  internal host has already contacted. The crawler (which the peer has
  never talked to) gets silence: this is why the paper can only ever
  report a *lower bound* on users behind a NAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..net.ports import PortAllocator
from .udp import Datagram, Endpoint, UdpFabric

__all__ = [
    "NatBehaviour",
    "Socket",
    "HostStack",
    "NatGateway",
    "NatStats",
]

ReceiveHandler = Callable[[Datagram], None]


class NatBehaviour:
    """Inbound-filtering behaviour of a NAT mapping."""

    FULL_CONE = "full_cone"
    ADDRESS_RESTRICTED = "address_restricted"

    ALL = (FULL_CONE, ADDRESS_RESTRICTED)


class Socket:
    """A bound UDP socket as seen by a simulated peer.

    ``endpoint`` is the *public* view — what other DHT nodes (and the
    crawler) observe in get_nodes responses.
    """

    def __init__(self, endpoint: Endpoint, owner: "_SocketOwner") -> None:
        self._endpoint = endpoint
        self._owner = owner
        self._handler: Optional[ReceiveHandler] = None
        self._closed = False

    @property
    def endpoint(self) -> Endpoint:
        """Public (ip, port) endpoint of this socket."""
        return self._endpoint

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Install the inbound datagram handler."""
        self._handler = handler

    def send(self, dst: Endpoint, payload: bytes) -> None:
        """Send ``payload`` to ``dst`` from this socket."""
        if self._closed:
            raise RuntimeError(f"socket {self._endpoint} is closed")
        self._owner._socket_send(self, dst, payload)

    def close(self) -> None:
        """Release the socket (and its NAT mapping / port). Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._owner._socket_closed(self)

    def _dispatch(self, datagram: Datagram) -> None:
        if self._closed or self._handler is None:
            return
        self._handler(datagram)


class _SocketOwner:
    """Interface both socket factories implement."""

    def _socket_send(self, sock: Socket, dst: Endpoint, payload: bytes) -> None:
        raise NotImplementedError

    def _socket_closed(self, sock: Socket) -> None:
        raise NotImplementedError


class HostStack(_SocketOwner):
    """A host holding a public IP address of its own.

    Sockets bind straight onto the fabric; the port is either chosen by
    the caller (a configured BitTorrent port) or allocated from the
    client-typical range.
    """

    def __init__(self, fabric: UdpFabric, ip: int, rng) -> None:
        self._fabric = fabric
        self.ip = ip
        self._allocator = PortAllocator(rng, 1024, 65535)

    def open_socket(self, port: Optional[int] = None) -> Socket:
        """Bind a socket; ``port=None`` draws from the allocator."""
        if port is None:
            port = self._allocator.allocate()
        elif not self._allocator.claim(port):
            raise ValueError(f"port {port} unavailable on {self.ip}")
        endpoint = Endpoint(self.ip, port)
        sock = Socket(endpoint, self)
        self._fabric.bind(endpoint, sock._dispatch)
        return sock

    def _socket_send(self, sock: Socket, dst: Endpoint, payload: bytes) -> None:
        self._fabric.send(sock.endpoint, dst, payload)

    def _socket_closed(self, sock: Socket) -> None:
        self._fabric.unbind(sock.endpoint)
        self._allocator.release(sock.endpoint.port)


@dataclass
class NatStats:
    """Per-gateway drop accounting."""

    inbound_no_mapping: int = 0
    inbound_restricted: int = 0
    inbound_delivered: int = 0


@dataclass
class _Mapping:
    socket: Socket
    behaviour: str
    permitted: Set[int] = field(default_factory=set)  # remote IPs contacted


class NatGateway(_SocketOwner):
    """One public IP shared by several internal users.

    A home NAT and a carrier-grade NAT differ only in scale here: the
    number of sockets opened behind the gateway and the size of the
    port pool under translation.
    """

    def __init__(self, fabric: UdpFabric, public_ip: int, rng) -> None:
        self._fabric = fabric
        self.public_ip = public_ip
        self._allocator = PortAllocator(rng, 1024, 65535)
        self._mappings: Dict[int, _Mapping] = {}
        self.stats = NatStats()
        self._fabric.bind_ip(public_ip, self._inbound)

    @property
    def active_mappings(self) -> int:
        """Currently-translated port mappings."""
        return len(self._mappings)

    def open_socket(
        self,
        *,
        behaviour: str = NatBehaviour.ADDRESS_RESTRICTED,
        forwarded_port: Optional[int] = None,
    ) -> Socket:
        """Open a translated socket for one internal user.

        ``forwarded_port`` emulates a UPnP/static port-forward: the
        public port is pinned and the mapping behaves as full-cone.
        """
        if behaviour not in NatBehaviour.ALL:
            raise ValueError(f"unknown NAT behaviour {behaviour!r}")
        if forwarded_port is not None:
            if not self._allocator.claim(forwarded_port):
                raise ValueError(
                    f"public port {forwarded_port} unavailable on gateway"
                )
            public_port = forwarded_port
            behaviour = NatBehaviour.FULL_CONE
        else:
            public_port = self._allocator.allocate()
        endpoint = Endpoint(self.public_ip, public_port)
        sock = Socket(endpoint, self)
        self._mappings[public_port] = _Mapping(sock, behaviour)
        return sock

    def shutdown(self) -> None:
        """Tear the gateway down (close every socket, release the IP)."""
        for mapping in list(self._mappings.values()):
            mapping.socket.close()
        self._fabric.unbind_ip(self.public_ip)

    # -- _SocketOwner ------------------------------------------------

    def _socket_send(self, sock: Socket, dst: Endpoint, payload: bytes) -> None:
        mapping = self._mappings.get(sock.endpoint.port)
        if mapping is None or mapping.socket is not sock:
            raise RuntimeError("send on socket with no NAT mapping")
        mapping.permitted.add(dst.ip)
        self._fabric.send(sock.endpoint, dst, payload)

    def _socket_closed(self, sock: Socket) -> None:
        port = sock.endpoint.port
        mapping = self._mappings.pop(port, None)
        if mapping is not None:
            self._allocator.release(port)

    # -- inbound path ------------------------------------------------

    def _inbound(self, datagram: Datagram) -> None:
        mapping = self._mappings.get(datagram.dst.port)
        if mapping is None:
            self.stats.inbound_no_mapping += 1
            return
        if (
            mapping.behaviour == NatBehaviour.ADDRESS_RESTRICTED
            and datagram.src.ip not in mapping.permitted
        ):
            self.stats.inbound_restricted += 1
            return
        self.stats.inbound_delivered += 1
        mapping.socket._dispatch(datagram)
