"""Wall-clock event loop with real UDP sockets.

The simulators drive everything through :class:`~repro.sim.events.Scheduler`
and the :class:`~repro.sim.nat.Socket` interface. This module provides
the *live* counterparts: a reactor whose clock is the OS clock and
whose sockets are real UDP sockets (``selectors``-based, single
thread). The DHT crawler runs unmodified on either pair — which is
what makes the reproduction's crawler a deployable artefact rather
than a simulation-only one.

Only loopback/LAN use is exercised in this repository's tests; pointing
it at the public DHT is the operator's decision.
"""

from __future__ import annotations

import heapq
import selectors
import socket as socket_module
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..net.ipv4 import ip_to_int
from .events import Scheduler
from .udp import Datagram, Endpoint

__all__ = ["LiveLoop", "LiveUdpSocket"]

ReceiveHandler = Callable[[Datagram], None]

_MAX_DATAGRAM = 65536


class LiveLoop(Scheduler):
    """A Scheduler whose time base is the wall clock.

    Inherits the heap/callback machinery; ``run_for`` interleaves due
    timer callbacks with socket readiness, sleeping on the selector in
    between. The crawler's ``every``/``after`` pacing works unchanged.
    """

    def __init__(self) -> None:
        super().__init__()
        self._selector = selectors.DefaultSelector()
        # This module IS the wall-clock adapter the simulators swap in
        # for live runs; nothing deterministic ever imports it.
        # reprolint: disable=DET
        self._origin = time.monotonic()
        self.clock.advance_to(0.0)
        self._sockets: Dict[int, "LiveUdpSocket"] = {}

    def _now_wall(self) -> float:
        return time.monotonic() - self._origin  # reprolint: disable=DET

    def _register(self, live_socket: "LiveUdpSocket") -> None:
        self._selector.register(
            live_socket._sock, selectors.EVENT_READ, live_socket
        )
        self._sockets[live_socket._sock.fileno()] = live_socket

    def _unregister(self, live_socket: "LiveUdpSocket") -> None:
        try:
            self._selector.unregister(live_socket._sock)
        except (KeyError, ValueError):
            pass

    def open_udp_socket(
        self, bind_ip: str = "127.0.0.1", port: int = 0
    ) -> "LiveUdpSocket":
        """Bind a real UDP socket managed by this loop."""
        live_socket = LiveUdpSocket(self, bind_ip, port)
        self._register(live_socket)
        return live_socket

    def run_for(self, duration: float) -> int:
        """Run the reactor for ``duration`` wall-clock seconds.

        Returns the number of timer callbacks executed. Socket receive
        handlers run as datagrams arrive.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        deadline = self._now_wall() + duration
        executed = 0
        while True:
            now = self._now_wall()
            if now >= deadline:
                break
            # Fire due timers.
            while self._heap and self._heap[0][0] <= now:
                fire_at, _, event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.clock.advance_to(max(self.clock.now, fire_at))
                callback = event.callback
                event.callback = None
                assert callback is not None
                callback()
                self._executed += 1
                executed += 1
            # Sleep until the next timer or the deadline, waking on IO.
            next_timer = self._heap[0][0] if self._heap else deadline
            timeout = max(0.0, min(next_timer, deadline) - self._now_wall())
            for key, _ in self._selector.select(timeout=min(timeout, 0.25)):
                key.data._drain()
            self.clock.advance_to(max(self.clock.now, self._now_wall()))
        return executed


class LiveUdpSocket:
    """A real UDP socket satisfying the simulated Socket interface:
    ``endpoint``, ``send``, ``on_receive``, ``close``."""

    def __init__(self, loop: LiveLoop, bind_ip: str, port: int) -> None:
        self._loop = loop
        self._sock = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_DGRAM
        )
        self._sock.setblocking(False)
        self._sock.bind((bind_ip, port))
        host, bound_port = self._sock.getsockname()
        self._endpoint = Endpoint(ip_to_int(host), bound_port)
        self._handler: Optional[ReceiveHandler] = None
        self._closed = False

    @property
    def endpoint(self) -> Endpoint:
        """The locally-bound (ip, port)."""
        return self._endpoint

    @property
    def closed(self) -> bool:
        """True once closed."""
        return self._closed

    def on_receive(self, handler: ReceiveHandler) -> None:
        """Install the inbound datagram handler (runs on the loop)."""
        self._handler = handler

    def send(self, dst: Endpoint, payload: bytes) -> None:
        """Send one datagram."""
        if self._closed:
            raise RuntimeError("socket is closed")
        from ..net.ipv4 import int_to_ip

        self._sock.sendto(payload, (int_to_ip(dst.ip), dst.port))

    def close(self) -> None:
        """Unregister and close. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._loop._unregister(self)
        self._sock.close()

    def _drain(self) -> None:
        """Read every queued datagram and dispatch to the handler."""
        while not self._closed:
            try:
                payload, (host, port) = self._sock.recvfrom(_MAX_DATAGRAM)
            except BlockingIOError:
                return
            except OSError:
                return
            if self._handler is None:
                continue
            src = Endpoint(ip_to_int(host), port)
            self._handler(Datagram(src, self._endpoint, payload))
