"""Named deterministic random streams.

Every stochastic component (topology, churn, UDP loss, abuse model, ...)
draws from its own named stream derived from the scenario seed. Adding a
new component therefore never perturbs the draws of existing ones — the
property that keeps regression baselines stable as the codebase grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

__all__ = ["RngHub", "zipf_weights", "weighted_index"]

T = TypeVar("T")


class RngHub:
    """Factory of independent :class:`random.Random` streams.

    Streams are memoised: asking twice for the same name returns the
    same (stateful) generator, so a component can re-fetch its stream
    instead of threading it through call chains.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root scenario seed."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the deterministic stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self._seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngHub":
        """Derive a child hub (e.g. one per AS) with an isolated
        seed lineage."""
        digest = hashlib.sha256(
            f"{self._seed}/fork:{name}".encode("utf-8")
        ).digest()
        return RngHub(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, exponent: float = 1.0) -> Sequence[float]:
    """Zipfian weights ``1/rank**exponent`` for ranks 1..n, normalised.

    Internet populations are heavy-tailed: a few ASes originate most
    blocklisted addresses (the paper: top-10 ASes hold 27.7%). Zipf
    weights reproduce that concentration.
    """
    if n <= 0:
        raise ValueError(f"need a positive count, got {n}")
    raw = [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def weighted_index(rng: random.Random, weights: Sequence[float]) -> int:
    """Draw an index proportionally to ``weights``.

    Plain inverse-CDF sampling; fine for the cold paths where it is
    used (population construction, not packet handling).
    """
    if not weights:
        raise ValueError("empty weight vector")
    point = rng.random() * sum(weights)
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if point < acc:
            return index
    return len(weights) - 1
