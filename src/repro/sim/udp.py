"""Simulated UDP fabric.

The BitTorrent crawler and the simulated peers exchange real bencoded
KRPC datagrams over this fabric. It models exactly the properties the
paper's methodology has to survive:

* **loss** — bt_ping runs over UDP; the paper reports a 48.6% response
  rate and compensates with hourly re-pings;
* **latency** — responses arrive after a delay, so the crawler needs
  timeouts and transaction matching;
* **unreachable endpoints** — stale routing-table entries point at ports
  nobody listens on any more (the false-NAT signal bt_ping verification
  is designed to reject).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..net.ipv4 import int_to_ip, is_valid_ip_int
from ..net.ports import is_valid_port
from .events import Scheduler
from .rng import RngHub

__all__ = ["Endpoint", "Datagram", "FabricStats", "UdpFabric"]


@dataclass(frozen=True, order=True, slots=True)
class Endpoint:
    """A public (ip, port) UDP endpoint. ``ip`` is an integer address."""

    ip: int
    port: int

    def __post_init__(self) -> None:
        if not is_valid_ip_int(self.ip):
            raise ValueError(f"bad endpoint address: {self.ip!r}")
        if not is_valid_port(self.port):
            raise ValueError(f"bad endpoint port: {self.port!r}")

    def __str__(self) -> str:
        return f"{int_to_ip(self.ip)}:{self.port}"


@dataclass(frozen=True, slots=True)
class Datagram:
    """One UDP datagram in flight."""

    src: Endpoint
    dst: Endpoint
    payload: bytes


@dataclass
class FabricStats:
    """Fabric-wide delivery counters (crawler traffic accounting —
    the paper reports 1.6B pings sent / 779M responses)."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_unbound: int = 0

    def delivery_rate(self) -> float:
        """Fraction of sent datagrams that reached a listener."""
        return self.delivered / self.sent if self.sent else 0.0


Handler = Callable[[Datagram], None]


class UdpFabric:
    """Best-effort datagram delivery between bound endpoints.

    Listeners bind exact ``(ip, port)`` endpoints. A NAT gateway instead
    binds its whole public IP with :meth:`bind_ip` and demultiplexes
    ports itself (that *is* what a NAT does).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng_hub: RngHub,
        *,
        loss_rate: float = 0.3,
        latency_min: float = 0.02,
        latency_max: float = 0.4,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        if not 0 < latency_min <= latency_max:
            raise ValueError(
                f"bad latency range [{latency_min}, {latency_max}]"
            )
        self._scheduler = scheduler
        self._rng = rng_hub.stream("udp.fabric")
        self._loss_rate = loss_rate
        self._latency_min = latency_min
        self._latency_max = latency_max
        self._endpoints: Dict[Endpoint, Handler] = {}
        self._ip_handlers: Dict[int, Handler] = {}
        self.stats = FabricStats()

    @property
    def scheduler(self) -> Scheduler:
        """The event loop datagrams are delivered on."""
        return self._scheduler

    # -- binding -----------------------------------------------------

    def bind(self, endpoint: Endpoint, handler: Handler) -> None:
        """Attach ``handler`` to an exact endpoint."""
        if endpoint.ip in self._ip_handlers:
            raise ValueError(
                f"{int_to_ip(endpoint.ip)} is owned by an IP-level handler"
            )
        if endpoint in self._endpoints:
            raise ValueError(f"endpoint {endpoint} already bound")
        self._endpoints[endpoint] = handler

    def unbind(self, endpoint: Endpoint) -> None:
        """Detach the handler for ``endpoint``; missing bindings raise."""
        if endpoint not in self._endpoints:
            raise KeyError(f"endpoint {endpoint} is not bound")
        del self._endpoints[endpoint]

    def bind_ip(self, ip: int, handler: Handler) -> None:
        """Attach ``handler`` to every port of ``ip`` (NAT gateways)."""
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        if ip in self._ip_handlers:
            raise ValueError(f"{int_to_ip(ip)} already has an IP handler")
        if any(ep.ip == ip for ep in self._endpoints):
            raise ValueError(
                f"{int_to_ip(ip)} already has port-level bindings"
            )
        self._ip_handlers[ip] = handler

    def unbind_ip(self, ip: int) -> None:
        """Detach an IP-level handler."""
        if ip not in self._ip_handlers:
            raise KeyError(f"{int_to_ip(ip)} has no IP handler")
        del self._ip_handlers[ip]

    def is_bound(self, endpoint: Endpoint) -> bool:
        """True when a datagram to ``endpoint`` would find a listener."""
        return endpoint in self._endpoints or endpoint.ip in self._ip_handlers

    # -- sending -----------------------------------------------------

    def send(self, src: Endpoint, dst: Endpoint, payload: bytes) -> None:
        """Send one datagram. Loss and latency are applied here;
        delivery happens as a scheduled event."""
        self.stats.sent += 1
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.stats.dropped_loss += 1
            return
        latency = self._rng.uniform(self._latency_min, self._latency_max)
        datagram = Datagram(src, dst, payload)
        self._scheduler.after(latency, lambda: self._deliver(datagram))

    def _deliver(self, datagram: Datagram) -> None:
        handler = self._endpoints.get(datagram.dst)
        if handler is None:
            handler = self._ip_handlers.get(datagram.dst.ip)
        if handler is None:
            self.stats.dropped_unbound += 1
            return
        self.stats.delivered += 1
        handler(datagram)
