"""Streaming blocklist ingestion with zero-downtime index updates.

The paper's blocklists are living objects — listings churn daily, and
the churn is precisely why reused addresses get unjustly blocked. This
package lets the online service ingest that churn continuously instead
of serving a frozen batch artefact:

* :mod:`repro.stream.delta` — :class:`ListingDelta` /
  :class:`DeltaBatch` records, the store diff, and the day-advance
  generator that replays a scenario's simulated churn as an ordered
  event stream;
* :mod:`repro.stream.log` — the append-only gzip-member update log
  with sequence numbers, checksums and crash-safe truncated-tail
  recovery;
* :mod:`repro.stream.epoch` — :class:`EpochIndex`, the copy-on-write
  incremental wrapper that publishes immutable index epochs via an
  atomic pointer swap (readers never lock, never see a torn state);
* :mod:`repro.stream.follower` — the background thread tailing a log
  into epoch swaps under a live server.

``repro stream`` emits an update log from a cached run;
``repro serve --follow`` replays one into a running server.
"""

from .delta import (
    DeltaBatch,
    ListingDelta,
    apply_deltas,
    day_advance_batches,
    diff_stores,
    store_as_of,
)
from .epoch import Epoch, EpochIndex, index_as_of
from .follower import LogFollower
from .log import (
    UpdateLogError,
    UpdateLogReader,
    UpdateLogWriter,
    read_update_log,
    write_update_log,
)

__all__ = [
    "DeltaBatch",
    "Epoch",
    "EpochIndex",
    "ListingDelta",
    "LogFollower",
    "UpdateLogError",
    "UpdateLogReader",
    "UpdateLogWriter",
    "apply_deltas",
    "day_advance_batches",
    "diff_stores",
    "index_as_of",
    "read_update_log",
    "store_as_of",
    "write_update_log",
]
