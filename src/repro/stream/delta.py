"""Listing deltas: the unit of streaming blocklist change.

BLAG-style collection shows listings churn daily — addresses appear,
persist, and are delisted within days. A :class:`ListingDelta` captures
one such change for one ``(ip, list)`` interval, and a
:class:`DeltaBatch` groups the deltas one collection tick produced
under a sequence number.

Two producers exist:

* :func:`diff_stores` — the general diff between two
  :class:`~repro.blocklists.timeline.ListingStore` states (what a
  collector emits after comparing today's snapshot set against
  yesterday's reconstruction);
* :func:`day_advance_batches` — the simulated-churn replay: walks the
  scenario's listing intervals one day at a time and emits exactly the
  add/extend/delist events a live collector would have observed.
  Applying the whole stream on top of the day-``start_day`` state
  reconstructs the full store (a pinned property test).

An interval is identified by ``(ip, list_id, first_day)``; within one
store, a list's intervals for one address never share a start day
(gap-splitting guarantees it), so the key is unique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..blocklists.timeline import Listing, ListingStore

__all__ = [
    "DeltaBatch",
    "ListingDelta",
    "OPS",
    "apply_deltas",
    "day_advance_batches",
    "diff_stores",
    "store_as_of",
    "truncate_spans",
]

#: Interval span in index form: (first_day, last_day, list_id).
Span = Tuple[int, int, str]

#: The three delta operations.
OP_ADD = "add"
OP_EXTEND = "extend"
OP_DELIST = "delist"
OPS = (OP_ADD, OP_EXTEND, OP_DELIST)


@dataclass(frozen=True)
class ListingDelta:
    """One change to one listing interval.

    ``op`` semantics against the interval keyed
    ``(ip, list_id, first_day)``:

    * ``add`` — a new interval ``first_day..last_day`` appeared;
    * ``extend`` — the interval's presence now reaches ``last_day``;
    * ``delist`` — the interval ends at ``last_day``; a ``last_day``
      before ``first_day`` removes the interval entirely (the list
      retracted it).

    ``day`` is the observation day the change became visible — replay
    pacing keys on it; application does not.
    """

    day: int
    ip: int
    list_id: str
    op: str
    first_day: int
    last_day: int

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown delta op: {self.op!r}")
        if self.op != OP_DELIST and self.last_day < self.first_day:
            raise ValueError(
                f"{self.op} delta ends before it starts: "
                f"{self.first_day}..{self.last_day}"
            )

    @property
    def removes(self) -> bool:
        """True for a delist that retracts the whole interval."""
        return self.op == OP_DELIST and self.last_day < self.first_day

    def to_wire(self) -> List:
        """Compact JSON row: ``[op, day, ip, list_id, first, last]``."""
        return [self.op, self.day, self.ip, self.list_id,
                self.first_day, self.last_day]

    @classmethod
    def from_wire(
        cls, row: Sequence, *, max_ip: int = 0xFFFFFFFF
    ) -> "ListingDelta":
        """Parse a wire row; :class:`ValueError` on anything malformed.

        ``max_ip`` is the address ceiling of the stream's declared
        family (``AddressFamily.max_int``); the IPv4 default keeps
        every pre-existing log's validation unchanged."""
        if not isinstance(row, (list, tuple)) or len(row) != 6:
            raise ValueError(f"delta row must have 6 fields: {row!r}")
        op, day, ip, list_id, first, last = row
        if not isinstance(op, str) or not isinstance(list_id, str):
            raise ValueError(f"bad delta row types: {row!r}")
        for value in (day, ip, first, last):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"bad delta row types: {row!r}")
        if ip < 0 or ip > max_ip:
            raise ValueError(f"delta ip out of range: {ip}")
        return cls(day, ip, list_id, op, first, last)


@dataclass(frozen=True)
class DeltaBatch:
    """The deltas one collection tick produced, in sequence order."""

    seq: int
    day: int
    deltas: Tuple[ListingDelta, ...]

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise ValueError(f"batch sequence must be >= 1: {self.seq}")
        object.__setattr__(self, "deltas", tuple(self.deltas))


def _sort_key(delta: ListingDelta) -> Tuple:
    return (delta.ip, delta.list_id, delta.first_day, delta.op)


# -- span-level application --------------------------------------------


def apply_to_spans(
    spans: Iterable[Span], deltas: Iterable[ListingDelta]
) -> List[Span]:
    """Apply deltas to one address's interval spans.

    Application is idempotent per delta: an ``add`` of an existing key
    replaces it, an ``extend``/``delist`` of a missing key creates it —
    so a replayed batch converges instead of corrupting state.
    """
    table: Dict[Tuple[str, int], int] = {
        (list_id, first): last for first, last, list_id in spans
    }
    for delta in deltas:
        key = (delta.list_id, delta.first_day)
        if delta.removes:
            table.pop(key, None)
        else:
            table[key] = delta.last_day
    return sorted(
        (first, last, list_id) for (list_id, first), last in table.items()
    )


def apply_deltas(
    store: ListingStore, deltas: Iterable[ListingDelta]
) -> ListingStore:
    """Apply deltas to a whole store, returning the successor store."""
    by_ip: Dict[int, List[ListingDelta]] = {}
    for delta in deltas:
        by_ip.setdefault(delta.ip, []).append(delta)
    result = ListingStore()
    for ip in store.all_ips() | set(by_ip):
        spans = [
            (l.first_day, l.last_day, l.list_id)
            for l in store.listings_of_ip(ip)
        ]
        for first, last, list_id in apply_to_spans(spans, by_ip.get(ip, ())):
            result.add(Listing(list_id, ip, first, last))
    return result


# -- diffing two stores ------------------------------------------------


def diff_stores(
    old: ListingStore, new: ListingStore, *, day: Optional[int] = None
) -> List[ListingDelta]:
    """Deltas that transform ``old`` into ``new``, per-IP ordered.

    ``day`` stamps the observation day on every delta (defaults to the
    latest last day across both stores — "the comparison happened
    now"). ``apply_deltas(old, diff_stores(old, new)) == new`` is the
    pinned contract.
    """
    if day is None:
        day = max(
            (l.last_day for store in (old, new) for l in store), default=0
        )
    deltas: List[ListingDelta] = []
    for ip in old.all_ips() | new.all_ips():
        old_spans = {
            (l.list_id, l.first_day): l.last_day
            for l in old.listings_of_ip(ip)
        }
        new_spans = {
            (l.list_id, l.first_day): l.last_day
            for l in new.listings_of_ip(ip)
        }
        for (list_id, first), last in new_spans.items():
            old_last = old_spans.get((list_id, first))
            if old_last is None:
                deltas.append(
                    ListingDelta(day, ip, list_id, OP_ADD, first, last)
                )
            elif last > old_last:
                deltas.append(
                    ListingDelta(day, ip, list_id, OP_EXTEND, first, last)
                )
            elif last < old_last:
                deltas.append(
                    ListingDelta(day, ip, list_id, OP_DELIST, first, last)
                )
        for (list_id, first) in old_spans:
            if (list_id, first) not in new_spans:
                deltas.append(
                    ListingDelta(
                        day, ip, list_id, OP_DELIST, first, first - 1
                    )
                )
    deltas.sort(key=_sort_key)
    return deltas


# -- day-advance replay ------------------------------------------------


def truncate_spans(spans: Iterable[Span], day: int) -> List[Span]:
    """The day-``day`` view of interval spans: intervals that have
    started, with ongoing ones clamped at ``day`` (a collector cannot
    know the future end of a presence run)."""
    return sorted(
        (first, min(last, day), list_id)
        for first, last, list_id in spans
        if first <= day
    )


def store_as_of(store: ListingStore, day: int) -> ListingStore:
    """The listing store as a live collector would know it on ``day``."""
    result = ListingStore()
    for listing in store:
        if listing.first_day <= day:
            result.add(
                Listing(
                    listing.list_id,
                    listing.ip,
                    listing.first_day,
                    min(listing.last_day, day),
                )
            )
    return result


def day_advance_batches(
    store: ListingStore,
    *,
    start_day: int,
    end_day: Optional[int] = None,
    start_seq: int = 1,
) -> Iterator[DeltaBatch]:
    """Replay the store's churn as an ordered event stream.

    Yields one :class:`DeltaBatch` per day in
    ``start_day+1 .. end_day`` that saw any change, relative to the
    day-``start_day`` state (:func:`store_as_of`): a listing opening
    that day is an ``add``, one still present is an ``extend`` to the
    new day, one absent after being present yesterday is a ``delist``
    confirming its final day. ``end_day`` defaults to the last day any
    listing is present, at which point the accumulated state equals the
    full store exactly.
    """
    if end_day is None:
        end_day = max((l.last_day for l in store), default=start_day)
    opens_on: Dict[int, List[Listing]] = {}
    live: Dict[Tuple[int, str, int], int] = {}  # key -> real last day
    for listing in store:
        if listing.first_day > start_day:
            opens_on.setdefault(listing.first_day, []).append(listing)
        elif listing.last_day >= start_day:
            live[
                (listing.ip, listing.list_id, listing.first_day)
            ] = listing.last_day
    seq = start_seq
    for day in range(start_day + 1, end_day + 1):
        deltas: List[ListingDelta] = []
        for (ip, list_id, first), last in list(live.items()):
            if last < day:
                # Ended yesterday (or earlier): confirm and close.
                deltas.append(
                    ListingDelta(day, ip, list_id, OP_DELIST, first, last)
                )
                del live[(ip, list_id, first)]
            else:
                deltas.append(
                    ListingDelta(day, ip, list_id, OP_EXTEND, first, day)
                )
        for listing in opens_on.get(day, ()):
            deltas.append(
                ListingDelta(
                    day, listing.ip, listing.list_id, OP_ADD, day, day
                )
            )
            if listing.last_day > day:
                live[
                    (listing.ip, listing.list_id, listing.first_day)
                ] = listing.last_day
            else:
                deltas.append(
                    ListingDelta(
                        day, listing.ip, listing.list_id, OP_DELIST,
                        day, day,
                    )
                )
        if deltas:
            deltas.sort(key=_sort_key)
            yield DeltaBatch(seq, day, tuple(deltas))
            seq += 1
