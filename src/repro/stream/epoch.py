"""Incremental index epochs: apply delta batches, swap atomically.

An :class:`EpochIndex` wraps a :class:`~repro.service.index.
ReputationIndex` and turns it into a continuously-updating structure
without ever making readers wait:

* each applied batch produces a *successor* index via copy-on-write
  (only the touched addresses' interval lists are rebuilt; everything
  else is shared);
* the successor is published as a new immutable :class:`Epoch` by a
  single reference assignment — atomic under the interpreter, so a
  reader that grabs :attr:`current` sees either the old epoch or the
  new one in full, never a torn mix;
* writers serialise on a lock; readers take no lock at all.

:func:`index_as_of` builds the streaming starting point: the full
run's measurement products (NAT verdicts, dynamic prefixes, AS data —
the slow pipeline's output) with the listing intervals rolled back to
what a collector knew on a given day. Replaying the update log from
that day forward then converges to the batch index.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from .delta import DeltaBatch, ListingDelta, apply_to_spans, truncate_spans

if TYPE_CHECKING:
    # Annotation-only: the service package imports this module at load
    # time (engine accepts an EpochIndex), so importing it back here
    # would make the package import order cyclic.
    from ..service.index import ReputationIndex

__all__ = ["Epoch", "EpochIndex", "index_as_of"]


@dataclass(frozen=True)
class Epoch:
    """One immutable published state of the streaming index."""

    index: ReputationIndex
    #: Monotonic publication counter (0 is the base index).
    number: int
    #: Last applied update-log sequence number (0 before any batch).
    seq: int
    #: Collection day the state corresponds to.
    day: int


class EpochIndex:
    """Lock-free-for-readers incremental wrapper over an index.

    Readers call :attr:`current` (one attribute load) and query the
    returned epoch's index; a concurrent :meth:`apply` never mutates
    anything a reader can hold. Batches must arrive in increasing
    sequence order; replays of already-applied sequences are ignored
    (the update-log reader can safely restart from scratch).
    """

    def __init__(self, base: ReputationIndex, *, day: int = 0) -> None:
        self._current = Epoch(base, 0, 0, day or base.default_day())
        self._write_lock = threading.Lock()
        self._deltas_applied = 0
        self._batches_skipped = 0

    @property
    def current(self) -> Epoch:
        """The live epoch — one atomic reference read."""
        return self._current

    @property
    def index(self) -> ReputationIndex:
        """The live epoch's index (readers needing only the data)."""
        return self._current.index

    def apply(self, batch: DeltaBatch) -> Epoch:
        """Apply one delta batch and publish the successor epoch.

        Returns the epoch that is current afterwards (unchanged when
        the batch's sequence was already applied).
        """
        with self._write_lock:
            epoch = self._current
            if batch.seq <= epoch.seq:
                self._batches_skipped += 1
                return epoch
            if batch.seq != epoch.seq + 1:
                raise ValueError(
                    f"batch seq {batch.seq} does not follow {epoch.seq}"
                )
            updates = self._updated_intervals(epoch.index, batch.deltas)
            successor = Epoch(
                epoch.index.with_interval_updates(updates),
                epoch.number + 1,
                batch.seq,
                batch.day,
            )
            self._deltas_applied += len(batch.deltas)
            self._current = successor  # the swap: one atomic store
            return successor

    def apply_all(self, batches: Iterable[DeltaBatch]) -> Epoch:
        """Apply a whole batch stream; returns the final epoch."""
        epoch = self._current
        for batch in batches:
            epoch = self.apply(batch)
        return epoch

    @staticmethod
    def _updated_intervals(
        index: ReputationIndex, deltas: Tuple[ListingDelta, ...]
    ) -> Dict[int, List]:
        by_ip: Dict[int, List[ListingDelta]] = {}
        for delta in deltas:
            by_ip.setdefault(delta.ip, []).append(delta)
        return {
            ip: apply_to_spans(index.intervals_of(ip), ip_deltas)
            for ip, ip_deltas in by_ip.items()
        }

    def stats(self) -> Dict[str, int]:
        """Epoch/sequence counters for logs and the ``stats`` op."""
        epoch = self._current
        return {
            "epoch": epoch.number,
            "seq": epoch.seq,
            "day": epoch.day,
            "deltas_applied": self._deltas_applied,
            "batches_skipped": self._batches_skipped,
        }


def index_as_of(
    full: ReputationIndex, day: int
) -> ReputationIndex:
    """Roll a compiled index's listing intervals back to ``day``.

    Measurement-side products (NAT set, users, dynamic prefixes, AS
    origins, categories) are kept whole — they come from the slow
    pipeline, not the daily feed churn the stream replays.
    """
    updates = {
        ip: truncate_spans(spans, day)
        for ip, spans in full.interval_items()
    }
    return full.with_interval_updates(updates)
