"""Background tailer: update log → epoch swaps.

A :class:`LogFollower` runs the read side of the streaming pipeline on
a daemon thread: poll the update log for appended batches, apply each
to the :class:`~repro.stream.epoch.EpochIndex`, repeat. The serving
path never blocks on it — queries read whichever epoch is current.

A log error (corruption, sequence gap) stops the follower and is
surfaced in :meth:`stats`; the server keeps answering from the last
good epoch, which is the only sane degradation for a reputation
service (stale beats down).
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from .delta import DeltaBatch
from .epoch import Epoch, EpochIndex
from .log import UpdateLogError, UpdateLogReader

__all__ = ["LogFollower"]


class LogFollower:
    """Tails one update log into one epoch index.

    ``batch_filter`` lets a consumer that owns only part of the keyed
    space (a cluster shard) rewrite each batch before it is applied —
    typically dropping out-of-range deltas while keeping the batch's
    sequence number, so every follower of one log stays in epoch
    lockstep regardless of which slice it holds.
    """

    def __init__(
        self,
        path: "Path | str",
        epochs: EpochIndex,
        *,
        poll_interval: float = 0.1,
        on_batch: Optional[Callable[[Epoch, int], None]] = None,
        batch_filter: Optional[Callable[[DeltaBatch], DeltaBatch]] = None,
    ) -> None:
        self._reader = UpdateLogReader(path)
        self._epochs = epochs
        self._poll_interval = poll_interval
        self._on_batch = on_batch
        self._batch_filter = batch_filter
        self._stop = threading.Event()
        # Guards the thread handle and progress counters: the tail
        # thread writes them while serving threads read stats().
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._batches = 0
        self._error: Optional[str] = None

    @property
    def epochs(self) -> EpochIndex:
        return self._epochs

    def start(self) -> "LogFollower":
        """Start tailing on a daemon thread."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("follower already started")
            thread = threading.Thread(
                target=self._run, name="repro-log-follower", daemon=True
            )
            self._thread = thread
        thread.start()
        return self

    def _run(self) -> None:
        try:
            for batch in self._reader.follow(
                poll_interval=self._poll_interval, stop=self._stop
            ):
                if self._batch_filter is not None:
                    batch = self._batch_filter(batch)
                epoch = self._epochs.apply(batch)
                with self._lock:
                    self._batches += 1
                if self._on_batch is not None:
                    self._on_batch(epoch, len(batch.deltas))
        except UpdateLogError as exc:
            with self._lock:
                self._error = str(exc)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop tailing and join the thread (idempotent)."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    def wait_for_seq(self, seq: int, timeout: float = 30.0) -> bool:
        """Block until the applied sequence reaches ``seq`` (tests and
        the replay CLI use this to detect catch-up)."""
        deadline = threading.Event()
        waited = 0.0
        step = min(self._poll_interval, 0.05)
        while waited < timeout:
            with self._lock:
                failed = self._error is not None
            if self._epochs.current.seq >= seq or failed:
                return self._epochs.current.seq >= seq
            deadline.wait(step)
            waited += step
        return self._epochs.current.seq >= seq

    def stats(self) -> Dict[str, Any]:
        """Progress counters plus any terminal log error."""
        with self._lock:
            batches = self._batches
            error = self._error
            thread = self._thread
        return {
            "batches": batches,
            "running": thread is not None and thread.is_alive(),
            "error": error,
            **self._epochs.stats(),
        }

    def __enter__(self) -> "LogFollower":
        return self.start()

    def __exit__(self, *_: Any) -> None:
        self.stop()
