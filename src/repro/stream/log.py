"""The append-only blocklist update log.

One file carries an ordered stream of :class:`~repro.stream.delta.
DeltaBatch` records: a header member followed by one gzip member per
batch, each member holding one JSON document. Records carry contiguous
sequence numbers and a CRC32 checksum of their body, so a reader can
detect both corruption (checksum or sequence violation — an error) and
a crash mid-append (a truncated final member — recoverable: everything
before it is intact, which is the property the whole design buys).

Per-record gzip members make appends atomic at the member boundary: a
writer appends complete members only, and a reader parses members until
one fails to complete. :class:`UpdateLogWriter` opened on an existing
log *recovers* first — it scans the file, truncates any partial tail,
and resumes the sequence after the last complete record.

:class:`UpdateLogReader.follow` tails the file for a live consumer
(the server's follower thread), yielding batches as they are appended.
"""

from __future__ import annotations

import gzip
import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..net.family import family_named
from .delta import DeltaBatch, ListingDelta

__all__ = [
    "LOG_MAGIC",
    "LOG_VERSION",
    "UpdateLogError",
    "UpdateLogReader",
    "UpdateLogWriter",
    "read_update_log",
    "write_update_log",
]

LOG_MAGIC = "repro-update-log"
LOG_VERSION = 1

#: Hard ceiling on one decompressed record (a day batch is kilobytes;
#: nothing legitimate comes close).
MAX_RECORD_BYTES = 8 << 20


class UpdateLogError(RuntimeError):
    """The log is missing, corrupt, or violates the sequence contract."""


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(
        body, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def _record_body(batch: DeltaBatch) -> Dict[str, Any]:
    return {
        "seq": batch.seq,
        "day": batch.day,
        "deltas": [delta.to_wire() for delta in batch.deltas],
    }


def _encode_record(batch: DeltaBatch) -> bytes:
    body = _record_body(batch)
    body["crc"] = zlib.crc32(_canonical(_record_body(batch)))
    return gzip.compress(_canonical(body), compresslevel=6)


def _header_max_ip(header: Dict[str, Any]) -> int:
    """The delta-ip ceiling a log's header declares.

    The family rides in ``meta.family`` (absent → IPv4, like every
    other payload in the stack), so pre-existing v4 logs validate
    exactly as before while an ``ipv6`` log admits 128-bit addresses.
    """
    meta = header.get("meta")
    name = meta.get("family") if isinstance(meta, dict) else None
    try:
        return family_named(name).max_int
    except ValueError as exc:
        raise UpdateLogError(str(exc)) from None


def _decode_batch(doc: Any, max_ip: int = 0xFFFFFFFF) -> DeltaBatch:
    if not isinstance(doc, dict):
        raise UpdateLogError(f"record is not an object: {doc!r}")
    try:
        seq, day, rows, crc = (
            doc["seq"], doc["day"], doc["deltas"], doc["crc"]
        )
    except (KeyError, TypeError) as exc:
        raise UpdateLogError(f"record missing field: {exc}") from None
    if not isinstance(seq, int) or not isinstance(day, int):
        raise UpdateLogError(f"bad record header: seq={seq!r} day={day!r}")
    expected = zlib.crc32(
        _canonical({"seq": seq, "day": day, "deltas": rows})
    )
    if crc != expected:
        raise UpdateLogError(
            f"record seq={seq} checksum mismatch "
            f"(stored {crc!r}, computed {expected})"
        )
    try:
        deltas = tuple(
            ListingDelta.from_wire(row, max_ip=max_ip) for row in rows
        )
    except (TypeError, ValueError) as exc:
        raise UpdateLogError(f"record seq={seq}: {exc}") from None
    try:
        return DeltaBatch(seq, day, deltas)
    except ValueError as exc:
        raise UpdateLogError(str(exc)) from None


def _scan_members(blob: bytes) -> Tuple[List[Any], int]:
    """Parse complete gzip members off the front of ``blob``.

    Returns ``(documents, bytes_consumed)``; bytes past ``consumed``
    are an incomplete (or corrupt) tail. A member that decompresses but
    is not valid JSON raises — that is corruption, not truncation.
    """
    documents: List[Any] = []
    pos = 0
    while pos < len(blob):
        decomp = zlib.decompressobj(wbits=31)
        try:
            data = decomp.decompress(blob[pos:], MAX_RECORD_BYTES)
        except zlib.error:
            break  # mangled tail: treat like truncation
        if not decomp.eof:
            break  # member not finished — truncated tail
        consumed = len(blob) - pos - len(decomp.unused_data)
        if consumed <= 0:  # pragma: no cover — defensive
            break
        try:
            documents.append(json.loads(data.decode("utf-8")))
        except (UnicodeDecodeError, ValueError) as exc:
            raise UpdateLogError(
                f"undecodable record at byte {pos}: {exc}"
            ) from None
        pos += consumed
    return documents, pos


def _check_header(doc: Any, path: Path) -> Dict[str, Any]:
    if not isinstance(doc, dict) or doc.get("magic") != LOG_MAGIC:
        raise UpdateLogError(f"{path} is not an update log")
    if doc.get("version") != LOG_VERSION:
        raise UpdateLogError(
            f"update log version {doc.get('version')!r} does not match "
            f"expected {LOG_VERSION}"
        )
    return doc


class UpdateLogWriter:
    """Appends batches to an update log, recovering on open.

    A fresh path gets a header member first; an existing log is scanned,
    any partial tail left by a crash is truncated away, and the sequence
    resumes after the last complete record. ``append`` enforces the
    next-sequence contract, so a writer bug cannot silently fork the
    stream.
    """

    def __init__(
        self,
        path: "Path | str",
        *,
        start_day: int = 0,
        meta: Optional[Dict[str, Any]] = None,
        fsync: bool = False,
    ) -> None:
        self._path = Path(path)
        self._fsync = fsync
        self._lock = threading.Lock()
        existing = (
            self._path.read_bytes() if self._path.exists() else b""
        )
        documents, consumed = _scan_members(existing)
        if documents:
            header, batches, consumed = _load(self._path)
            self._header = header
            self._next_seq = (batches[-1].seq + 1) if batches else 1
            if consumed < len(existing):
                with open(self._path, "r+b") as handle:
                    handle.truncate(consumed)
        else:
            # Fresh path, or a crash left not even one complete member:
            # start the log over with a header.
            self._header = {
                "magic": LOG_MAGIC,
                "version": LOG_VERSION,
                "start_day": int(start_day),
                "meta": dict(meta or {}),
            }
            self._next_seq = 1
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if existing:
                with open(self._path, "r+b") as handle:
                    handle.truncate(0)
            self._write(gzip.compress(_canonical(self._header), 6))

    @property
    def path(self) -> Path:
        return self._path

    @property
    def header(self) -> Dict[str, Any]:
        return dict(self._header)

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended batch must carry."""
        return self._next_seq

    def _write(self, blob: bytes) -> None:
        with open(self._path, "ab") as handle:
            handle.write(blob)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())

    def append(self, batch: DeltaBatch) -> None:
        """Append one batch; its ``seq`` must be the next in line."""
        with self._lock:
            if batch.seq != self._next_seq:
                raise UpdateLogError(
                    f"batch seq {batch.seq} does not follow "
                    f"{self._next_seq - 1}"
                )
            self._write(_encode_record(batch))
            self._next_seq += 1

    def append_deltas(
        self, day: int, deltas: Iterable[ListingDelta]
    ) -> DeltaBatch:
        """Wrap loose deltas into the next-sequence batch and append."""
        with self._lock:
            batch = DeltaBatch(self._next_seq, day, tuple(deltas))
            self._write(_encode_record(batch))
            self._next_seq += 1
        return batch


def _load(path: Path) -> Tuple[Dict[str, Any], List[DeltaBatch], int]:
    """Scan a log file: header, complete batches, bytes consumed."""
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        raise UpdateLogError(f"update log not found: {path}") from None
    documents, consumed = _scan_members(blob)
    if not documents:
        raise UpdateLogError(f"{path} holds no complete records")
    header = _check_header(documents[0], path)
    max_ip = _header_max_ip(header)
    batches: List[DeltaBatch] = []
    expected = 1
    for doc in documents[1:]:
        batch = _decode_batch(doc, max_ip)
        if batch.seq != expected:
            raise UpdateLogError(
                f"sequence gap: expected {expected}, found {batch.seq}"
            )
        batches.append(batch)
        expected += 1
    return header, batches, consumed


def read_update_log(
    path: "Path | str",
) -> Tuple[Dict[str, Any], List[DeltaBatch]]:
    """Read a whole log; a truncated tail is silently dropped (that is
    the crash-recovery contract), any other violation raises."""
    header, batches, _ = _load(Path(path))
    return header, batches


def write_update_log(
    path: "Path | str",
    batches: Iterable[DeltaBatch],
    *,
    start_day: int = 0,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a complete log in one call (the batch-mode producer)."""
    writer = UpdateLogWriter(path, start_day=start_day, meta=meta)
    for batch in batches:
        writer.append(batch)
    return writer.path


class UpdateLogReader:
    """Incremental reader: read what is there, then tail for more."""

    def __init__(self, path: "Path | str") -> None:
        self._path = Path(path)
        # One poll at a time: the cursor (offset + expected seq) is
        # read-modify-write state, and a reader may be shared between
        # a follower thread and a stats/header probe.
        self._lock = threading.Lock()
        self._offset = 0
        self._next_seq = 1
        self._header: Optional[Dict[str, Any]] = None
        self._max_ip = 0xFFFFFFFF

    @property
    def header(self) -> Dict[str, Any]:
        """The log header (reads the file on first access)."""
        if self._header is None:
            self.poll()
            if self._header is None:
                raise UpdateLogError(
                    f"{self._path} holds no complete header yet"
                )
        return dict(self._header)

    def poll(self) -> List[DeltaBatch]:
        """Batches appended since the last call (empty when none)."""
        with self._lock:
            try:
                with open(self._path, "rb") as handle:
                    handle.seek(self._offset)
                    # Catch-up read of the local log tail: bounded by
                    # the on-disk file, and every member is re-checked
                    # against MAX_RECORD_BYTES during the scan.
                    # reprolint: disable=WIRE
                    blob = handle.read()
            except FileNotFoundError:
                raise UpdateLogError(
                    f"update log not found: {self._path}"
                ) from None
            documents, consumed = _scan_members(blob)
            if self._offset == 0 and documents:
                self._header = _check_header(
                    documents.pop(0), self._path
                )
                self._max_ip = _header_max_ip(self._header)
            batches: List[DeltaBatch] = []
            for doc in documents:
                batch = _decode_batch(doc, self._max_ip)
                if batch.seq != self._next_seq:
                    raise UpdateLogError(
                        f"sequence gap: expected {self._next_seq}, "
                        f"found {batch.seq}"
                    )
                batches.append(batch)
                self._next_seq += 1
            self._offset += consumed
            return batches

    def follow(
        self,
        *,
        poll_interval: float = 0.1,
        stop: Optional[threading.Event] = None,
    ) -> Iterator[DeltaBatch]:
        """Yield batches as they are appended, until ``stop`` is set."""
        stop = stop or threading.Event()
        while not stop.is_set():
            batches = self.poll()
            for batch in batches:
                yield batch
            if not batches:
                stop.wait(poll_interval)
