"""Operator survey: schema, synthetic responses, tabulation."""

from .model import BLOCKLIST_TYPES, NETWORK_TYPES, SurveyResponse
from .generate import FIGURE9_USAGE, SURVEY_SIZE, generate_responses
from .analyze import SurveySummary, figure9_usage, render_table1, summarize

__all__ = [
    "BLOCKLIST_TYPES",
    "NETWORK_TYPES",
    "SurveyResponse",
    "FIGURE9_USAGE",
    "SURVEY_SIZE",
    "generate_responses",
    "SurveySummary",
    "figure9_usage",
    "render_table1",
    "summarize",
]
