"""Survey tabulation: Table 1 and Figure 9."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.tables import render_table
from .model import BLOCKLIST_TYPES, SurveyResponse

__all__ = ["SurveySummary", "summarize", "figure9_usage", "render_table1"]


@dataclass
class SurveySummary:
    """Table 1's cells."""

    respondents: int
    pct_external: float
    paid_avg: float
    paid_max: int
    public_avg: float
    public_max: int
    pct_direct_block: float
    pct_threat_intel: float
    reuse_respondents: int
    pct_dynamic_issue: float
    pct_cgn_issue: float


def summarize(responses: Sequence[SurveyResponse]) -> SurveySummary:
    """Compute Table 1 from a response set."""
    if not responses:
        raise ValueError("no survey responses to summarise")
    n = len(responses)
    external = [r for r in responses if r.uses_external]
    answered = [r for r in responses if r.answered_reuse_questions()]
    return SurveySummary(
        respondents=n,
        pct_external=100.0 * len(external) / n,
        paid_avg=(
            sum(r.paid_lists for r in external) / len(external)
            if external
            else 0.0
        ),
        paid_max=max((r.paid_lists for r in external), default=0),
        public_avg=(
            sum(r.public_lists for r in external) / len(external)
            if external
            else 0.0
        ),
        public_max=max((r.public_lists for r in external), default=0),
        pct_direct_block=100.0 * sum(r.direct_block for r in responses) / n,
        pct_threat_intel=100.0
        * sum(r.threat_intel_input for r in responses)
        / n,
        reuse_respondents=len(answered),
        pct_dynamic_issue=(
            100.0
            * sum(bool(r.dynamic_hurts_accuracy) for r in answered)
            / len(answered)
            if answered
            else 0.0
        ),
        pct_cgn_issue=(
            100.0
            * sum(bool(r.cgn_hurts_accuracy) for r in answered)
            / len(answered)
            if answered
            else 0.0
        ),
    )


def figure9_usage(
    responses: Sequence[SurveyResponse],
) -> List[Tuple[str, float]]:
    """Blocklist-type usage among reuse-affected operators, sorted by
    descending usage (Figure 9's bars)."""
    affected = [r for r in responses if r.faced_reuse_issues()]
    if not affected:
        return [(t, 0.0) for t in BLOCKLIST_TYPES]
    usage = [
        (
            type_name,
            100.0
            * sum(type_name in r.blocklist_types for r in affected)
            / len(affected),
        )
        for type_name in BLOCKLIST_TYPES
    ]
    usage.sort(key=lambda kv: -kv[1])
    return usage


def render_table1(summary: SurveySummary) -> str:
    """Table 1 in the paper's layout."""
    rows = [
        ("Blocklist usage", "External blocklists", f"{summary.pct_external:.0f}%"),
        (
            "",
            "Paid-for blocklists",
            f"Avg:{summary.paid_avg:.0f} Max:{summary.paid_max}",
        ),
        (
            "",
            "Public blocklists",
            f"Avg:{summary.public_avg:.0f} Max:{summary.public_max}",
        ),
        ("Active defense", "Directly block IPs", f"{summary.pct_direct_block:.0f}%"),
        (
            "",
            "Threat intelligence system",
            f"{summary.pct_threat_intel:.0f}%",
        ),
        ("Issues", "Dynamic addressing*", f"{summary.pct_dynamic_issue:.0f}%"),
        ("", "Carrier-grade NATs*", f"{summary.pct_cgn_issue:.0f}%"),
    ]
    note = (
        f"(*) answered by {summary.reuse_respondents} of "
        f"{summary.respondents} respondents"
    )
    return (
        render_table(
            ["Question", "Item", "Response"],
            rows,
            title="Table 1: Summary of survey responses",
        )
        + "\n"
        + note
    )
