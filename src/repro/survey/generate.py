"""Synthetic survey-respondent generation.

Reproduces the published marginals of the 65-operator survey:

* 85% use external blocklists, ~70% maintain internal ones;
* 59% block directly, 35% feed a threat-intelligence system;
* paid lists: average 2, maximum 39; public lists: average 10,
  maximum 68 (heavy-tailed — most operators use a handful, one uses
  dozens);
* 34 of 65 answered the reuse questions; of those 56% blame CGN and
  76% blame dynamic addressing for inaccuracy;
* blocklist-type usage among operators with reuse issues follows
  Figure 9 (spam and reputation lists on top).
"""

from __future__ import annotations

import random
from typing import Dict, List

from .model import BLOCKLIST_TYPES, NETWORK_TYPES, SurveyResponse

__all__ = ["SURVEY_SIZE", "FIGURE9_USAGE", "generate_responses"]

SURVEY_SIZE = 65

#: Approximate Figure 9 usage rates (fraction of reuse-affected
#: operators using each external blocklist type), read off the plot.
FIGURE9_USAGE: Dict[str, float] = {
    "spam": 0.93,
    "reputation": 0.86,
    "ddos": 0.76,
    "bruteforce": 0.69,
    "ransomware": 0.59,
    "ssh": 0.52,
    "http": 0.45,
    "backdoor": 0.34,
    "ftp": 0.24,
    "banking": 0.17,
    "voip": 0.10,
}

_REGIONS = ("EU", "NA", "AS", "SA", "AF")


def _heavy_tailed_count(
    rng: random.Random, mean: float, maximum: int
) -> int:
    """Geometric-ish draw with the observed mean, clipped to the
    observed maximum; the max itself appears via the clip."""
    if mean <= 0:
        return 0
    p = 1.0 / (mean + 1.0)
    count = 0
    while rng.random() > p and count < maximum:
        count += 1
    return count


def generate_responses(
    rng: random.Random, *, n: int = SURVEY_SIZE
) -> List[SurveyResponse]:
    """Generate ``n`` responses with the published marginals."""
    if n <= 0:
        raise ValueError("need a positive respondent count")
    responses: List[SurveyResponse] = []
    # Exactly the published counts when n == 65; proportional otherwise.
    n_external = round(n * 0.85)
    n_internal = round(n * 0.70)
    n_direct = round(n * 0.59)
    n_ti = round(n * 0.35)
    n_answered = round(n * (34 / 65))
    n_cgn_yes = round(n_answered * (19 / 34))
    n_dyn_yes = round(n_answered * (26 / 34))

    def flags(k: int) -> List[bool]:
        out = [True] * k + [False] * (n - k)
        rng.shuffle(out)
        return out

    external_flags = flags(n_external)
    internal_flags = flags(n_internal)
    direct_flags = flags(n_direct)
    ti_flags = flags(n_ti)
    answered_flags = flags(n_answered)
    # Within answerers, assign CGN/dynamic opinions.
    answer_slots = [i for i, a in enumerate(answered_flags) if a]
    cgn_yes = set(rng.sample(answer_slots, min(n_cgn_yes, len(answer_slots))))
    dyn_yes = set(rng.sample(answer_slots, min(n_dyn_yes, len(answer_slots))))

    # One deliberate whale for each maximum, among external users.
    external_slots = [i for i, e in enumerate(external_flags) if e]
    paid_whale = rng.choice(external_slots)
    public_whale = rng.choice(external_slots)

    for index in range(n):
        uses_external = external_flags[index]
        if uses_external:
            paid = (
                39
                if index == paid_whale
                else _heavy_tailed_count(rng, 1.6, 12)
            )
            public = (
                68
                if index == public_whale
                else _heavy_tailed_count(rng, 9.0, 30)
            )
        else:
            paid = 0
            public = 0
        answered = answered_flags[index]
        faced = answered and (index in cgn_yes or index in dyn_yes)
        if uses_external:
            types = frozenset(
                t
                for t in BLOCKLIST_TYPES
                if rng.random()
                < (FIGURE9_USAGE[t] if faced else FIGURE9_USAGE[t] * 0.7)
            )
        else:
            types = frozenset()
        n_types = rng.randint(1, 3)
        responses.append(
            SurveyResponse(
                respondent_id=index,
                network_types=tuple(
                    rng.sample(NETWORK_TYPES, n_types)
                ),
                region=rng.choice(_REGIONS),
                subscribers=int(10 ** rng.uniform(2, 7)),
                maintains_internal=internal_flags[index],
                uses_external=uses_external,
                paid_lists=paid,
                public_lists=public,
                direct_block=direct_flags[index],
                threat_intel_input=ti_flags[index],
                cgn_hurts_accuracy=(index in cgn_yes) if answered else None,
                dynamic_hurts_accuracy=(
                    (index in dyn_yes) if answered else None
                ),
                blocklist_types=types,
            )
        )
    return responses
