"""Operator-survey response schema (paper Section 6, Appendix A/C).

The questionnaire's 24 questions reduce, for the published analysis,
to the fields below. Responses are synthetic (the original human
subjects are not reproducible) but the *analysis code* consumes this
schema exactly as it would consume a real response export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

__all__ = ["NETWORK_TYPES", "BLOCKLIST_TYPES", "SurveyResponse"]

NETWORK_TYPES = (
    "end-user ISP",
    "enterprise",
    "content provider",
    "education",
    "transit",
)

#: The blocklist types of Figure 9, in the paper's display order.
BLOCKLIST_TYPES = (
    "spam",
    "reputation",
    "ddos",
    "bruteforce",
    "ransomware",
    "ssh",
    "http",
    "backdoor",
    "ftp",
    "banking",
    "voip",
)


@dataclass(frozen=True)
class SurveyResponse:
    """One operator's answers."""

    respondent_id: int
    network_types: Tuple[str, ...]
    region: str
    subscribers: int
    maintains_internal: bool
    uses_external: bool
    paid_lists: int
    public_lists: int
    direct_block: bool
    threat_intel_input: bool
    #: None = skipped the reuse questions (only 34 of 65 answered).
    cgn_hurts_accuracy: Optional[bool]
    dynamic_hurts_accuracy: Optional[bool]
    #: External blocklist types in use (Figure 9's categories).
    blocklist_types: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.respondent_id < 0:
            raise ValueError("respondent id must be non-negative")
        if self.subscribers < 0:
            raise ValueError("subscriber count cannot be negative")
        if self.paid_lists < 0 or self.public_lists < 0:
            raise ValueError("list counts cannot be negative")
        unknown_nets = set(self.network_types) - set(NETWORK_TYPES)
        if unknown_nets:
            raise ValueError(f"unknown network types {unknown_nets}")
        unknown_types = set(self.blocklist_types) - set(BLOCKLIST_TYPES)
        if unknown_types:
            raise ValueError(f"unknown blocklist types {unknown_types}")
        if not self.uses_external and (self.paid_lists or self.public_lists):
            raise ValueError(
                "a respondent without external lists cannot count them"
            )

    def answered_reuse_questions(self) -> bool:
        """True when the reuse questions were answered at all."""
        return (
            self.cgn_hurts_accuracy is not None
            or self.dynamic_hurts_accuracy is not None
        )

    def faced_reuse_issues(self) -> bool:
        """Operators who reported accuracy problems from either reuse
        form — Figure 9's population."""
        return bool(self.cgn_hurts_accuracy) or bool(
            self.dynamic_hurts_accuracy
        )
