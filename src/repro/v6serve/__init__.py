"""IPv6 reputation serving: /64 reuse pools behind the 128-bit index.

The measurement paper names IPv6 as the stated path for extending
reuse-aware blocklisting; this package supplies the serving-side
pieces that path needs on top of the family-generic index layer:

* :mod:`repro.v6serve.pools` — cluster an observed-address corpus into
  /64 pools and judge each pool's reuse behaviour with the Entropy/IP
  classifier (:func:`repro.ipv6.entropyip.classify_reuse_risk`):
  rotating (privacy-addressed) pools are the IPv6 analogue of the
  paper's dynamic /24s;
* :mod:`repro.v6serve.aliases` — Rye-style aliased-prefix detection:
  a prefix where *every* probed address answers is one responder
  wearing 2^64 addresses, and must be collapsed before it pollutes
  reputation as a giant fake rotating pool;
* :mod:`repro.v6serve.build` — fold both into the dynamic-prefix and
  reuse facts a family-generic
  :class:`~repro.service.index.ReputationIndex` consumes exactly like
  v4 facts;
* :mod:`repro.v6serve.hitlist` — the seeded ``hitlist-v6`` adversary
  scenario: a generated active-address corpus, an Entropy/IP crawler
  discovering targets in the sparse space, listings, and scored
  verdicts, registered with the adversary lab
  (``repro scenarios run --scenario hitlist-v6``).
"""

from .aliases import find_aliased_prefixes, prune_aliased
from .build import V6ReuseFacts, v6_reuse_facts
from .hitlist import HitlistV6Model
from .pools import Pool, cluster_pools, rotating_prefixes

__all__ = [
    "HitlistV6Model",
    "Pool",
    "V6ReuseFacts",
    "cluster_pools",
    "find_aliased_prefixes",
    "prune_aliased",
    "rotating_prefixes",
    "v6_reuse_facts",
]
