"""Rye-style aliased-prefix detection for IPv6 hitlists.

An *aliased* prefix is one machine configured to answer for an entire
block (CDN edge, honeypot, middlebox): probe any of its 2^64
addresses and something replies. To a hitlist crawler it looks like a
bottomless pool of responsive targets; to the reuse classifier its
random probe responses look exactly like a giant rotating privacy
pool. Left alone it would (a) swamp the hitlist with fake targets and
(b) enter the reputation index as a dynamic prefix whose listings and
reuse facts describe one responder, not a population — Rye's "IPv6
Hitlists at Scale" pitfall. Detection follows the standard recipe
(Gasser et al.): probe a handful of pseudo-random addresses inside
the prefix; a prefix where *every* probe answers is aliased, because
genuinely populated /64s are vanishingly sparse.
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, Iterable, List, Sequence

from ..ipv6.addr6 import Prefix6

__all__ = ["DEFAULT_PROBES", "find_aliased_prefixes", "prune_aliased"]

#: Random probes per prefix. In a real /64 the chance a random
#: address is populated is ~0, so even a few all-responding probes
#: are conclusive; 16 matches the published methodology.
DEFAULT_PROBES = 16


def find_aliased_prefixes(
    prefixes: Iterable[Prefix6],
    responder: Callable[[int], bool],
    rng: random.Random,
    *,
    probes: int = DEFAULT_PROBES,
) -> FrozenSet[Prefix6]:
    """The subset of ``prefixes`` that answer for their whole block.

    ``responder(ip) -> bool`` is the probe primitive (a scenario's
    ground-truth world, or a real prober behind the same signature).
    Every candidate is probed at ``probes`` pseudo-random non-network
    addresses; only a clean sweep of responses marks it aliased — a
    single silent address proves the prefix has holes and therefore a
    real (sparse) population.
    """
    if probes <= 0:
        raise ValueError("need a positive probe count")
    aliased = []
    for prefix in sorted(set(prefixes)):
        host_bits = 128 - prefix.length
        if host_bits == 0:
            continue  # a /128 is an address, not a block to collapse
        if all(
            responder(prefix.network | (rng.getrandbits(host_bits) or 1))
            for _ in range(probes)
        ):
            aliased.append(prefix)
    return frozenset(aliased)


def prune_aliased(
    corpus: Sequence[int], aliased: Iterable[Prefix6]
) -> List[int]:
    """Drop every corpus address inside an aliased prefix, keeping
    order — the de-aliased hitlist downstream stages consume."""
    blocks = tuple(aliased)
    return [
        address
        for address in corpus
        if not any(block.contains(address) for block in blocks)
    ]
