"""Fold a v6 hitlist into the reuse facts the index consumes.

``v6_reuse_facts`` is the package's one-call pipeline: alias-collapse
the observed corpus (:mod:`repro.v6serve.aliases`), cluster the
survivors into /64 pools (:mod:`repro.v6serve.pools`), and emit the
dynamic-prefix facts a family-generic
:class:`~repro.service.index.ReputationIndex` takes exactly where the
v4 pipeline hands it dynamic /24s. The QueryEngine then serves
``dynamic``/``unjust``/greylist verdicts for v6 addresses with no
v6-specific code of its own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Sequence, Tuple

from ..ipv6.addr6 import Prefix6
from .aliases import DEFAULT_PROBES, find_aliased_prefixes, prune_aliased
from .pools import Pool, cluster_pools, rotating_prefixes

__all__ = ["V6ReuseFacts", "v6_reuse_facts"]


@dataclass(frozen=True)
class V6ReuseFacts:
    """What the serving plane learns from one observed corpus."""

    #: Rotating /64 pools — the index's dynamic prefixes.
    dynamic_prefixes: Tuple[Prefix6, ...]
    #: Every observed /64 with its population and reuse judgement
    #: (aliased blocks already removed).
    pools: Tuple[Pool, ...]
    #: Prefixes collapsed as aliased; excluded from every fact above.
    aliased: FrozenSet[Prefix6]
    #: The corpus with aliased-prefix addresses removed.
    hitlist: Tuple[int, ...]


def v6_reuse_facts(
    corpus: Sequence[int],
    *,
    responder: Callable[[int], bool] = lambda _ip: False,
    rng: "random.Random | None" = None,
    probes: int = DEFAULT_PROBES,
) -> V6ReuseFacts:
    """Observed addresses → alias-clean /64 reuse facts.

    ``responder`` is the probe primitive alias detection uses; the
    silent default skips collapsing (nothing can sweep 16 probes), for
    callers that only want pool clustering. ``rng`` drives the probe
    addresses — pass a seeded one for deterministic artefacts.
    """
    rng = rng if rng is not None else random.Random(0)
    candidates = {Prefix6(a & ~((1 << 64) - 1), 64) for a in corpus}
    aliased = find_aliased_prefixes(
        candidates, responder, rng, probes=probes
    )
    hitlist = prune_aliased(corpus, aliased)
    pools: List[Pool] = cluster_pools(hitlist) if hitlist else []
    return V6ReuseFacts(
        dynamic_prefixes=rotating_prefixes(pools),
        pools=tuple(pools),
        aliased=aliased,
        hitlist=tuple(hitlist),
    )
