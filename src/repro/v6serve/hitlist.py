"""The seeded ``hitlist-v6`` adversary scenario.

The IPv6 space is too sparse to scan, so serving reputation for it
starts from a *hitlist*: a corpus of known-active addresses, expanded
by an Entropy/IP crawler that learns the corpus structure and probes
generated candidates (Gasser et al., "Clusters in the Expanse"). This
scenario plays that pipeline end to end inside the adversary lab:

1. **World** — :func:`repro.ipv6.generator.generate_corpus` builds an
   active-address world of privacy-addressed /64s (rotating), EUI-64
   and sequential /64s (stable), plus one *aliased* /64 where a
   single responder answers every probe;
2. **Crawl** — :func:`repro.ipv6.entropyip.analyze` learns the corpus
   structure and generates candidate targets; candidates something
   responds to join the hitlist — the aliased block "discovers"
   endlessly, which is exactly Rye's trap;
3. **Facts** — :func:`repro.v6serve.build.v6_reuse_facts` collapses
   the aliased prefix and classifies the surviving /64 pools; the
   rotating pools become the ledger's dynamic prefixes, so aliased
   space never enters reputation;
4. **Abuse** — rotating attackers burn a fresh privacy address per
   day, stable attackers sit on EUI-64 addresses, and a phantom
   attacker emits from random aliased-block addresses; listings and
   scoring then run through the standard lab machinery over the
   128-bit index.

Registered with the adversary registry on import, so
``repro scenarios run --scenario hitlist-v6`` and the stream-fidelity
check work like any v4 scenario — just over a v6 index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..adversary.models import (
    HORIZON_DAYS,
    AbuseScenario,
    AbuseStint,
    AdversaryModel,
    GroundTruthLedger,
    IpDay,
    register_adversary,
    scenario_rng,
)
from ..internet.abuse import AbuseCategory, AbuseEvent
from ..ipv6.addr6 import Prefix6, ip6_to_int, subnet_of
from ..ipv6.entropyip import AddressStructure, analyze
from ..ipv6.generator import Strategy, SubnetPlan, generate_corpus
from .build import V6ReuseFacts, v6_reuse_facts

__all__ = ["HitlistSurvey", "HitlistV6Model"]


def _p6(text: str) -> Prefix6:
    return Prefix6(ip6_to_int(text), 64)


@dataclass(frozen=True)
class HitlistSurvey:
    """The discovery half of the scenario — deterministic per seed.

    Tests and the experiment writeup read the crawl/alias metrics
    from here; :meth:`HitlistV6Model.build` layers abuse on top."""

    plans: Tuple[SubnetPlan, ...]
    aliased_prefix: Prefix6
    #: The generated active world (no aliased-block addresses).
    corpus: Tuple[int, ...]
    #: The crawler's starting knowledge: a sample of the corpus plus
    #: a few leaked aliased-block addresses.
    seeds: Tuple[int, ...]
    structure: AddressStructure
    #: Responding crawler candidates that were *not* already seeds.
    discovered: Tuple[int, ...]
    facts: V6ReuseFacts

    def metrics(self) -> Dict[str, int]:
        """The headline numbers the EXPERIMENTS entry reports."""
        discovered_aliased = sum(
            1
            for address in self.discovered
            if self.aliased_prefix.contains(address)
        )
        return {
            "corpus": len(self.corpus),
            "seeds": len(self.seeds),
            "discovered": len(self.discovered),
            "discovered_aliased": discovered_aliased,
            "discovered_real": len(self.discovered) - discovered_aliased,
            "hitlist": len(self.facts.hitlist),
            "pools": len(self.facts.pools),
            "rotating_pools": len(self.facts.dynamic_prefixes),
            "aliased_prefixes": len(self.facts.aliased),
        }


class HitlistV6Model(AdversaryModel):
    """Hitlist-driven IPv6 world with rotating, stable and aliased
    abuse — the 128-bit index's acceptance scenario."""

    name = "hitlist-v6"
    description = (
        "entropy-crawled IPv6 hitlist: privacy pools rotate daily, "
        "an aliased /64 is collapsed before it pollutes reputation"
    )

    #: Privacy (rotating) /64s — the v6 dynamic space.
    PRIVACY_SUBNETS = 3
    #: Stable /64s: EUI-64 LANs plus one sequential server subnet.
    EUI64_SUBNETS = 2
    #: Fraction of the active world the crawler starts from.
    SEED_SHARE = 0.65
    #: Candidates generated per /64 seed group (Entropy/IP models are
    #: learned per prefix, as in the published hitlist pipelines).
    GROUP_CANDIDATES = 48
    #: Seed groups smaller than this carry no learnable structure.
    MIN_GROUP = 8
    ROTATING_ATTACKERS = 4
    STABLE_ATTACKERS = 2
    INNOCENTS_PER_POOL = 12
    STABLE_INNOCENTS = 10
    ACTIVE = (4, 52)

    def _plans(self) -> Tuple[SubnetPlan, ...]:
        plans = [
            SubnetPlan(
                _p6(f"2001:db8:a:{index:x}::"),
                Strategy.PRIVACY,
                hosts=48,
            )
            for index in range(self.PRIVACY_SUBNETS)
        ]
        plans += [
            SubnetPlan(
                _p6(f"2001:db8:b:{index:x}::"),
                Strategy.EUI64,
                hosts=32,
            )
            for index in range(self.EUI64_SUBNETS)
        ]
        plans.append(
            SubnetPlan(_p6("2001:db8:c:1::"), Strategy.SEQUENTIAL, hosts=16)
        )
        return tuple(plans)

    def survey(self, seed: int) -> HitlistSurvey:
        """Generate the world, crawl it, and compile reuse facts."""
        rng = scenario_rng(self.name, seed, "world")
        plans = self._plans()
        aliased_prefix = _p6("2001:db8:ffff:aaaa::")
        corpus = tuple(generate_corpus(plans, rng))
        corpus_set = set(corpus)

        def responder(address: int) -> bool:
            # The ground-truth probe answer: real hosts answer for
            # themselves; the aliased block answers for everything.
            return address in corpus_set or aliased_prefix.contains(
                address
            )

        # The crawler starts from a partial seed hitlist: a sample of
        # the real world plus a few leaked aliased-block addresses (as
        # a real public seed list would carry).
        crawl_rng = scenario_rng(self.name, seed, "crawl")
        seeds = set(
            crawl_rng.sample(
                sorted(corpus_set),
                int(len(corpus_set) * self.SEED_SHARE),
            )
        )
        seeds.update(
            aliased_prefix.network | crawl_rng.getrandbits(64)
            for _ in range(24)
        )
        structure = analyze(sorted(seeds))

        # Entropy/IP target generation runs per /64 seed group (the
        # structure model is learned per prefix): structured pools
        # yield genuinely new hosts, the privacy pools yield nothing
        # (2^64 is too sparse to guess into), and the aliased block
        # "answers" for every generated candidate.
        groups: Dict[Prefix6, List[int]] = {}
        for address in sorted(seeds):
            groups.setdefault(subnet_of(address), []).append(address)
        discovered: List[int] = []
        for _prefix, members in sorted(groups.items()):
            if len(members) < self.MIN_GROUP:
                continue
            model = analyze(members)
            discovered.extend(
                candidate
                for candidate in model.generate_candidates(
                    crawl_rng, self.GROUP_CANDIDATES
                )
                if candidate not in seeds and responder(candidate)
            )

        hitlist_raw = sorted(seeds | set(discovered))
        facts = v6_reuse_facts(
            hitlist_raw,
            responder=responder,
            rng=scenario_rng(self.name, seed, "alias"),
        )
        return HitlistSurvey(
            plans=plans,
            aliased_prefix=aliased_prefix,
            corpus=corpus,
            seeds=tuple(sorted(seeds)),
            structure=structure,
            discovered=tuple(sorted(discovered)),
            facts=facts,
        )

    def build(self, seed: int) -> AbuseScenario:
        survey = self.survey(seed)
        rng = scenario_rng(self.name, seed, "abuse")
        privacy = [plan.subnet for plan in survey.plans[: self.PRIVACY_SUBNETS]]
        eui64_addresses = sorted(
            address
            for address in survey.corpus
            if any(
                plan.subnet.contains(address)
                for plan in survey.plans
                if plan.strategy == Strategy.EUI64
            )
        )

        events: List[AbuseEvent] = []
        malicious: Set[IpDay] = set()
        innocent: Dict[IpDay, int] = {}
        stints: List[AbuseStint] = []
        first_active, last_active = self.ACTIVE

        # Rotating attackers: a fresh privacy address every active day
        # — in 2^64 of IID space a listed address is *never* re-drawn,
        # so only the /64-granular dynamic fact can describe the pool.
        for index in range(self.ROTATING_ATTACKERS):
            attacker = f"v6-flux-{index}"
            pool = privacy[index % len(privacy)]
            for day in range(first_active, last_active + 1):
                ip = pool.network | rng.getrandbits(64)
                malicious.add((ip, day))
                stints.append(AbuseStint(attacker, ip, day, day))
                for _ in range(2):
                    events.append(
                        AbuseEvent(
                            day=day,
                            ip=ip,
                            user_key=attacker,
                            category=AbuseCategory.SPAM,
                        )
                    )

        # Stable attackers: parked on EUI-64 addresses, emitting most
        # days — the population listings keep describing correctly.
        for index in range(self.STABLE_ATTACKERS):
            attacker = f"v6-static-{index}"
            ip = eui64_addresses[index]
            active_days = [
                day
                for day in range(first_active, last_active + 1)
                if rng.random() < 0.8
            ]
            for day in active_days:
                malicious.add((ip, day))
                events.append(
                    AbuseEvent(
                        day=day,
                        ip=ip,
                        user_key=attacker,
                        category=AbuseCategory.BRUTEFORCE,
                    )
                )
            if active_days:
                stints.append(
                    AbuseStint(
                        attacker, ip, active_days[0], active_days[-1]
                    )
                )

        # Phantom attacker inside the aliased block: its listings are
        # real, but the block must never surface as reuse facts.
        for day in range(first_active, last_active + 1, 3):
            ip = survey.aliased_prefix.network | rng.getrandbits(64)
            malicious.add((ip, day))
            stints.append(AbuseStint("v6-phantom", ip, day, day))
            events.append(
                AbuseEvent(
                    day=day,
                    ip=ip,
                    user_key="v6-phantom",
                    category=AbuseCategory.SCAN,
                )
            )

        # Innocents: privacy-pool users rotate like their attackers do
        # (one user per drawn address-day); stable EUI-64 hosts keep
        # one address for the whole horizon.
        for pool_index, pool in enumerate(privacy):
            for user in range(self.INNOCENTS_PER_POOL):
                for day in range(HORIZON_DAYS):
                    key = (pool.network | rng.getrandbits(64), day)
                    innocent[key] = innocent.get(key, 0) + 1
        for address in eui64_addresses[
            self.STABLE_ATTACKERS : self.STABLE_ATTACKERS
            + self.STABLE_INNOCENTS
        ]:
            for day in range(HORIZON_DAYS):
                innocent[(address, day)] = 1

        asn_by_ip = {
            ip: 64800 + ((ip >> 64) & 0xFFFF) % 7
            for (ip, _) in set(innocent) | malicious
        }
        ledger = GroundTruthLedger(
            malicious_ip_days=frozenset(malicious),
            innocent_user_days=innocent,
            stints=tuple(
                sorted(
                    stints,
                    key=lambda s: (s.attacker, s.first_day, s.ip),
                )
            ),
            dynamic_prefixes=survey.facts.dynamic_prefixes,
            asn_by_ip=asn_by_ip,
        )
        return AbuseScenario(
            name=self.name,
            seed=seed,
            horizon_days=HORIZON_DAYS,
            windows=((0, HORIZON_DAYS - 1),),
            events=tuple(
                sorted(events, key=lambda e: (e.day, e.ip, e.category))
            ),
            ledger=ledger,
            family="ipv6",
        )


register_adversary(HitlistV6Model())
