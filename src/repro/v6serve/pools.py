"""Cluster observed IPv6 addresses into /64 reuse pools.

A /64 is the assignment atom of the IPv6 serving plane (one subnet,
one household/LAN — the analogue of the paper's dynamically-reassigned
/24s), so reuse facts are modelled per /64: the Entropy/IP
interface-identifier classifier decides whether a pool's addresses
*rotate* (RFC 4941 privacy addressing — listings on /128s go stale
and mis-target almost immediately) or stay *stable* (EUI-64,
sequential or service addressing — a listing keeps meaning the same
host). Rotating pools become the index's dynamic prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ipv6.addr6 import Prefix6, subnet_of
from ..ipv6.entropyip import REUSE_ROTATING, classify_reuse_risk

__all__ = ["Pool", "cluster_pools", "rotating_prefixes"]


@dataclass(frozen=True)
class Pool:
    """One observed /64: its prefix, population, and reuse judgement."""

    prefix: Prefix6
    addresses: int
    risk: str  # REUSE_ROTATING or REUSE_STABLE

    @property
    def rotating(self) -> bool:
        return self.risk == REUSE_ROTATING


def cluster_pools(corpus: Sequence[int]) -> List[Pool]:
    """Group ``corpus`` into /64 pools with per-pool reuse judgements.

    Pools come back sorted by prefix so downstream fact tables are
    deterministic for a deterministic corpus.
    """
    counts: Dict[Prefix6, int] = {}
    for address in corpus:
        prefix = subnet_of(address)
        counts[prefix] = counts.get(prefix, 0) + 1
    risk_by_subnet = classify_reuse_risk(corpus)
    return [
        Pool(
            prefix=prefix,
            addresses=count,
            risk=risk_by_subnet[str(prefix)],
        )
        for prefix, count in sorted(counts.items())
    ]


def rotating_prefixes(pools: Sequence[Pool]) -> Tuple[Prefix6, ...]:
    """The dynamic-prefix facts: every rotating /64, prefix-sorted."""
    return tuple(
        sorted(pool.prefix for pool in pools if pool.rotating)
    )
