"""Shared fixtures for the test suite.

The service-layer tests all need one real small-scale run to compile
into an index; building it once per session keeps them fast without
sharing mutable state (the run's products are read-only).
"""

import pytest

from repro.experiments.runner import FullRun, RunConfig, run_full


@pytest.fixture(scope="session")
def small_full_run() -> FullRun:
    """One seeded test-scale run shared by the service tests."""
    return run_full(RunConfig.small(2020))
