"""Tests for the adversary lab: models, scoring, streaming fidelity.

The golden pins here are the determinism contract: every metric is a
pure function of ``(scenario, seed)``, so the exact values at seed
2020 must never drift without an intentional model change.
"""

import json

import pytest

from repro.adversary import (
    StreamFidelityError,
    adversary_names,
    get_adversary,
    render_score_table,
    scenario_rng,
    score_scenario,
    verify_stream_fidelity,
    write_scenario_log,
)
from repro.adversary.models import HORIZON_DAYS
from repro.cli import main
from repro.internet.abuse import event_sort_key

SEED = 2020

_SCENARIOS = {}
_SCORES = {}


def build_cached(name):
    if name not in _SCENARIOS:
        _SCENARIOS[name] = get_adversary(name).build(SEED)
    return _SCENARIOS[name]


def score_cached(name):
    if name not in _SCORES:
        _SCORES[name] = score_scenario(build_cached(name))
    return _SCORES[name]


class TestRegistry:
    def test_registered_names(self):
        assert adversary_names() == (
            "fast-flux",
            "cgn-shelter",
            "campaign-hop",
            "slow-drip",
            "hitlist-v6",
        )

    def test_models_self_describe(self):
        for name in adversary_names():
            model = get_adversary(name)
            assert model.name == name
            assert model.description

    def test_unknown_name(self):
        with pytest.raises(KeyError) as err:
            get_adversary("teleport")
        assert "fast-flux" in str(err.value)


class TestDeterminism:
    @pytest.mark.parametrize("name", adversary_names())
    def test_same_seed_byte_identical(self, name):
        model = get_adversary(name)
        assert model.build(SEED).to_json() == model.build(SEED).to_json()

    @pytest.mark.parametrize("name", adversary_names())
    def test_seed_changes_output(self, name):
        model = get_adversary(name)
        assert model.build(SEED).to_json() != model.build(SEED + 1).to_json()

    def test_rng_streams_independent(self):
        a = scenario_rng("x", 1, "alpha")
        b = scenario_rng("x", 1, "beta")
        again = scenario_rng("x", 1, "alpha")
        first = a.random()
        assert first != b.random()
        assert first == again.random()


class TestLedgerInvariants:
    @pytest.mark.parametrize("name", adversary_names())
    def test_events_match_ledger(self, name):
        scenario = build_cached(name)
        malicious = scenario.ledger.malicious_ip_days
        assert scenario.events
        for event in scenario.events:
            assert (event.ip, event.day) in malicious
            assert 0 <= event.day < scenario.horizon_days

    @pytest.mark.parametrize("name", adversary_names())
    def test_events_canonically_sorted(self, name):
        events = build_cached(name).events
        assert list(events) == sorted(events, key=event_sort_key)

    @pytest.mark.parametrize("name", adversary_names())
    def test_stints_cover_malicious_days(self, name):
        ledger = build_cached(name).ledger
        covered = {
            (stint.ip, day)
            for stint in ledger.stints
            for day in range(stint.first_day, stint.last_day + 1)
        }
        assert ledger.malicious_ip_days <= covered
        for stint in ledger.stints:
            assert stint.first_day <= stint.last_day
            assert (stint.ip, stint.first_day) in ledger.malicious_ip_days

    @pytest.mark.parametrize("name", adversary_names())
    def test_eval_points_and_reuse_facts(self, name):
        ledger = build_cached(name).ledger
        benign = set(ledger.benign_ip_days())
        assert benign.isdisjoint(ledger.malicious_ip_days)
        assert set(ledger.eval_points()) == (
            set(ledger.malicious_ip_days) | set(ledger.innocent_user_days)
        )
        for ip, _ in ledger.eval_points():
            assert ip in ledger.asn_by_ip

    def test_horizon_and_windows(self):
        scenario = build_cached("fast-flux")
        assert scenario.horizon_days == HORIZON_DAYS
        assert scenario.windows == ((0, HORIZON_DAYS - 1),)


# Seed-2020 golden pins: (detection, fp rate, naive unjust user-days,
# reuse-aware unjust user-days, listings, evaded stints).
GOLDENS = {
    "fast-flux": (0.8087, 0.0099, 107, 0, 1151, 62),
    "cgn-shelter": (1.0, 0.0672, 29645, 0, 124, 0),
    "campaign-hop": (0.9292, 0.0014, 17, 10, 688, 0),
    "slow-drip": (0.5325, 0.0, 0, 0, 58, 0),
}


class TestScoring:
    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_golden_metrics(self, name):
        result = score_cached(name).result
        detection, fp, naive, aware, listings, evaded = GOLDENS[name]
        assert result["overall"]["detection_rate"] == detection
        assert result["overall"]["false_positive_rate"] == fp
        policies = result["policies"]
        assert policies["block-listed"]["unjust_user_days"] == naive
        assert policies["reuse-aware"]["unjust_user_days"] == aware
        assert result["counts"]["listings"] == listings
        assert result["time_to_detection"]["evaded_stints"] == evaded

    @pytest.mark.parametrize("name", adversary_names())
    def test_reuse_aware_never_worse(self, name):
        policies = score_cached(name).result["policies"]
        assert (
            policies["reuse-aware"]["unjust_user_days"]
            <= policies["block-listed"]["unjust_user_days"]
        )

    def test_score_is_deterministic(self):
        again = score_scenario(build_cached("slow-drip"))
        assert again.result == score_cached("slow-drip").result

    def test_cgn_detection_is_collateral(self):
        """The CGN scenario's whole point: perfect naive detection is
        inseparable from mass unjust blocking, and the reuse-aware
        policy greylists it all away."""
        result = score_cached("cgn-shelter").result
        naive = result["policies"]["block-listed"]
        assert naive["blocked_malicious_rate"] == 1.0
        assert naive["unjust_user_days_shared"] > 0
        assert result["policies"]["reuse-aware"]["unjust_user_days"] == 0

    def test_result_document_versioned(self):
        result = score_cached("slow-drip").result
        assert result["format"] == "repro-adversary-result"
        assert result["version"] == 1
        assert result["seed"] == SEED
        json.dumps(result)  # JSON-ready, no sets or tuples as keys

    def test_render_table(self):
        table = render_score_table(
            [score_cached("slow-drip").result]
        )
        assert "slow-drip" in table
        assert "53.2%" in table


class TestStreamFidelity:
    @pytest.mark.parametrize("name", adversary_names())
    def test_live_follower_matches_static(self, name, tmp_path):
        score = score_cached(name)
        log = write_scenario_log(score, tmp_path / f"{name}.log")
        info = verify_stream_fidelity(score, log)
        assert info["batches"] > 0
        assert info["verdicts_compared"] == len(score.verdicts)

    def test_truncated_log_fails_fidelity(self, tmp_path):
        score = score_cached("slow-drip")
        log = write_scenario_log(score, tmp_path / "full.log")
        raw = log.read_bytes()
        truncated = tmp_path / "truncated.log"
        truncated.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(StreamFidelityError):
            verify_stream_fidelity(score, truncated, timeout=1.0)


class TestScenariosCli:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in adversary_names():
            assert name in out

    def test_run_writes_versioned_artefacts(self, capsys, tmp_path):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--scenario",
                    "slow-drip",
                    "--seed",
                    str(SEED),
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream fidelity ok" in out
        assert "blocklist effectiveness" in out
        artefact = tmp_path / f"slow-drip-seed{SEED}.json"
        result = json.loads(artefact.read_text(encoding="utf-8"))
        assert result["format"] == "repro-adversary-result"
        assert result == score_cached("slow-drip").result
        assert (tmp_path / f"slow-drip-seed{SEED}.log").exists()

    def test_run_skip_fidelity(self, capsys, tmp_path):
        assert (
            main(
                [
                    "scenarios",
                    "run",
                    "--scenario",
                    "slow-drip",
                    "--out",
                    str(tmp_path),
                    "--skip-fidelity",
                ]
            )
            == 0
        )
        assert "stream fidelity skipped" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["scenarios", "run", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
