"""Tests for ECDF helpers and text rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import Ecdf, fraction_at_most, percentile
from repro.analysis.tables import render_comparison, render_series, render_table


class TestEcdf:
    def test_basic(self):
        cdf = Ecdf([1, 2, 3, 4])
        assert cdf.at(0) == 0.0
        assert cdf.at(2) == 0.5
        assert cdf.at(4) == 1.0
        assert cdf.min == 1 and cdf.max == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ecdf([])

    def test_median(self):
        assert Ecdf([1, 2, 3]).median() == 2
        assert Ecdf([5]).median() == 5

    def test_quantile_bounds(self):
        cdf = Ecdf([10, 20, 30])
        assert cdf.quantile(0.0) == 10
        assert cdf.quantile(1.0) == 30
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_points_step_shape(self):
        cdf = Ecdf([1, 1, 2])
        points = cdf.points()
        assert points == [(1, 2 / 3), (2, 1.0)]

    def test_len(self):
        assert len(Ecdf([1, 2, 2])) == 3

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=50))
    def test_monotone_and_consistent(self, samples):
        cdf = Ecdf(samples)
        xs = sorted(set(samples))
        values = [cdf.at(x) for x in xs]
        assert values == sorted(values)
        assert cdf.at(max(samples)) == 1.0
        # quantile/at consistency: F(quantile(q)) >= q
        for q in (0.1, 0.5, 0.9):
            assert cdf.at(cdf.quantile(q)) >= q - 1e-12

    def test_helpers(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([], 2) == 0.0
        assert percentile([1, 2, 3, 4], 0.5) == 2


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_title(self):
        text = render_table(["a"], [["x"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_downsampling(self):
        points = [(float(i), float(i) * 2) for i in range(100)]
        text = render_series(points, title="T", max_points=10)
        # 10 sample lines + title + header
        assert len(text.splitlines()) == 12

    def test_empty(self):
        assert "empty" in render_series([], title="T")

    def test_short_series_kept(self):
        text = render_series([(1.0, 2.0)], title="T")
        assert "1" in text


class TestRenderComparison:
    def test_shape(self):
        text = render_comparison(
            [("metric", 10, 12)], title="Cmp"
        )
        assert "paper" in text and "measured" in text and "metric" in text


class TestAsciiFigures:
    def test_columns_shape(self):
        from repro.analysis.figures import ascii_columns

        text = ascii_columns([10, 5, 1], title="T", height=4)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 4 + 2  # title + rows + axis + caption
        assert "#" in text

    def test_columns_log_scale_caption(self):
        from repro.analysis.figures import ascii_columns

        text = ascii_columns([1000, 1], title="T", log_scale=True)
        assert "log10" in text

    def test_columns_downsamples(self):
        from repro.analysis.figures import ascii_columns

        text = ascii_columns(list(range(500)), title="T", max_columns=40)
        axis = [l for l in text.splitlines() if l.strip().startswith("+")][0]
        assert len(axis.strip()) <= 41 + 1

    def test_columns_empty(self):
        from repro.analysis.figures import ascii_columns

        assert "empty" in ascii_columns([], title="T")

    def test_cdf_shape(self):
        from repro.analysis.figures import ascii_cdf

        text = ascii_cdf([(0, 0.5), (10, 1.0)], title="C", height=5, width=20)
        assert text.splitlines()[0] == "C"
        assert "*" in text
        assert "1.00" in text and "0.00" in text

    def test_cdf_empty(self):
        from repro.analysis.figures import ascii_cdf

        assert "empty" in ascii_cdf([], title="C")
