"""Tests for the Cai et al. ICMP census baseline."""

import random

import pytest

from repro.baselines.icmp_census import CensusConfig, run_census
from repro.internet.population import PopulationConfig, build_population
from repro.internet.topology import TopologyConfig, build_topology


def census_world(seed=5, fast_fraction=0.5):
    topo = build_topology(
        TopologyConfig(n_eyeball=4, n_hosting=1, n_backbone=1, max_slash16s=1),
        random.Random(seed),
    )
    config = PopulationConfig(
        static_single_lines_per_16=25,
        home_nat_lines_per_16=4,
        cgn_sites_per_16=0.0,
        dynamic_pools_per_as_range=(1, 1),
        pool_slash24s_range=(1, 1),
        pool_lines_per_24=40,
        fast_pool_lines_per_24=20,
        fast_pool_fraction=fast_fraction,
        horizon_days=200.0,
    )
    return build_population(topo, config, random.Random(seed))


class TestCensus:
    def test_bad_window(self):
        truth = census_world()
        with pytest.raises(ValueError):
            run_census(
                truth,
                CensusConfig(window=(10.0, 5.0)),
                random.Random(1),
            )

    def test_fast_pools_detected_statics_not(self):
        truth = census_world()
        config = CensusConfig(
            window=(100.0, 180.0),
            firewalled_fraction=0.1,
            block_sample_fraction=1.0,
        )
        result = run_census(truth, config, random.Random(2))
        inferred = result.dynamic_blocks()
        true_fast = truth.fast_dynamic_slash24s(max_mean_days=2.0)
        # Every true fast block covered by the census should be flagged...
        covered_fast = {
            b for b in true_fast if b.network in result.metrics
        }
        assert covered_fast
        assert covered_fast <= inferred
        # ...and no purely-static block may be flagged.
        dynamic_all = truth.dynamic_slash24s()
        for block in inferred:
            assert block in dynamic_all

    def test_full_firewalling_hides_everything(self):
        truth = census_world()
        config = CensusConfig(
            window=(100.0, 180.0),
            firewalled_fraction=1.0,
            middlebox_fraction=0.0,
            block_sample_fraction=1.0,
        )
        result = run_census(truth, config, random.Random(3))
        assert not result.dynamic_blocks()

    def test_block_sampling_reduces_coverage(self):
        truth = census_world()
        full = run_census(
            truth,
            CensusConfig(window=(100.0, 180.0), block_sample_fraction=1.0),
            random.Random(4),
        )
        sampled = run_census(
            truth,
            CensusConfig(window=(100.0, 180.0), block_sample_fraction=0.3),
            random.Random(4),
        )
        assert len(sampled.metrics) < len(full.metrics)

    def test_probe_accounting(self):
        truth = census_world()
        config = CensusConfig(
            window=(100.0, 130.0),
            probe_interval_days=1.0,
            block_sample_fraction=1.0,
        )
        result = run_census(truth, config, random.Random(5))
        assert result.probes_sent > 0
        assert result.probes_sent % 30 == 0  # whole rounds per address

    def test_covers_query(self):
        truth = census_world()
        result = run_census(
            truth,
            CensusConfig(window=(100.0, 160.0), block_sample_fraction=1.0),
            random.Random(6),
        )
        some_block = next(iter(result.metrics.values())).block
        assert result.covers(some_block.first() + 3)
        assert not result.covers(0xDEADBEEF)

    def test_metrics_ranges(self):
        truth = census_world()
        result = run_census(
            truth,
            CensusConfig(window=(100.0, 160.0), block_sample_fraction=1.0),
            random.Random(7),
        )
        for m in result.metrics.values():
            assert 0.0 <= m.availability <= 1.0
            assert 0.0 <= m.volatility <= 1.0
            assert m.median_uptime_days >= 0.0
            assert m.responsive_addresses >= CensusConfig().min_responsive
