"""Tests for the bencode codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.bencode import BencodeError, bdecode, bencode


class TestEncode:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"i0e"),
            (42, b"i42e"),
            (-7, b"i-7e"),
            (b"", b"0:"),
            (b"spam", b"4:spam"),
            ("uni", b"3:uni"),
            ([], b"le"),
            ([1, b"a"], b"li1e1:ae"),
            ({}, b"de"),
            ({b"b": 2, b"a": 1}, b"d1:ai1e1:bi2ee"),  # sorted keys
        ],
    )
    def test_vectors(self, value, expected):
        assert bencode(value) == expected

    def test_nested(self):
        value = {b"d": {b"list": [1, 2, [b"x"]]}, b"n": -1}
        assert bdecode(bencode(value)) == value

    def test_str_keys_coerced(self):
        assert bencode({"key": 1}) == b"d3:keyi1ee"

    def test_bool_rejected(self):
        with pytest.raises(BencodeError):
            bencode(True)

    def test_float_rejected(self):
        with pytest.raises(BencodeError):
            bencode(1.5)

    def test_none_rejected(self):
        with pytest.raises(BencodeError):
            bencode(None)

    def test_bad_key_type(self):
        with pytest.raises(BencodeError):
            bencode({1: 2})

    def test_duplicate_key_via_str_bytes(self):
        with pytest.raises(BencodeError):
            bencode({b"a": 1, "a": 2})


class TestDecode:
    def test_empty_input(self):
        with pytest.raises(BencodeError):
            bdecode(b"")

    @pytest.mark.parametrize(
        "blob",
        [
            b"i12",  # unterminated int
            b"ie",  # empty int
            b"i--1e",
            b"i01e",  # leading zero
            b"i-0e",  # negative zero
            b"5:spam",  # short string
            b"4spam",  # missing colon... actually digit then non-digit
            b"l",  # unterminated list
            b"d",  # unterminated dict
            b"d1:a",  # dict missing value
            b"di1e1:ae",  # non-bytes key
            b"d1:ai1e1:ai2ee",  # duplicate key
            b"x",  # unknown lead byte
            b"i1ei2e",  # trailing data
            b"04:spam",  # leading zero in length
        ],
    )
    def test_malformed_rejected(self, blob):
        with pytest.raises(BencodeError):
            bdecode(blob)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(BencodeError) as err:
            bdecode(b"4:spamXX")
        assert "trailing" in str(err.value)

    def test_non_bytes_input(self):
        with pytest.raises(BencodeError):
            bdecode("i1e")  # type: ignore[arg-type]

    def test_memoryview_accepted(self):
        assert bdecode(memoryview(b"i5e")) == 5

    def test_decodes_unsorted_dict(self):
        # Real clients emit unsorted dicts; decoder tolerates them.
        assert bdecode(b"d1:bi2e1:ai1ee") == {b"a": 1, b"b": 2}


_bencodable = st.recursive(
    st.one_of(
        st.integers(min_value=-(2**63), max_value=2**63),
        st.binary(max_size=40),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.binary(max_size=12), children, max_size=5),
    ),
    max_leaves=20,
)


class TestRoundtrip:
    @settings(max_examples=150, deadline=None)
    @given(_bencodable)
    def test_roundtrip(self, value):
        assert bdecode(bencode(value)) == value

    @settings(max_examples=100, deadline=None)
    @given(_bencodable)
    def test_canonical_encoding_stable(self, value):
        assert bencode(bdecode(bencode(value))) == bencode(value)
