"""Tests for the blocklist substrate: catalog, formats, timelines, feeds."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocklists.catalog import (
    MAINTAINERS,
    build_catalog,
    catalog_by_maintainer,
)
from repro.blocklists.feed import generate_listings, materialize_snapshot
from repro.blocklists.formats import (
    FORMATS,
    FeedFormatError,
    parse_feed,
    serialize_feed,
)
from repro.blocklists.timeline import (
    Listing,
    ListingStore,
    listings_from_snapshots,
)
from repro.internet.abuse import AbuseCategory, AbuseEvent
from repro.net.ipv4 import Prefix, ip_to_int


class TestCatalog:
    def test_exactly_151_lists(self):
        assert len(build_catalog()) == 151

    def test_table2_counts_respected(self):
        grouped = catalog_by_maintainer()
        for maintainer, count, *_ in MAINTAINERS:
            assert len(grouped[maintainer]) == count, maintainer

    def test_badips_is_largest(self):
        grouped = catalog_by_maintainer()
        assert len(grouped["Bad IPs"]) == 44
        assert max(len(v) for v in grouped.values()) == 44

    def test_list_ids_unique(self):
        ids = [info.list_id for info in build_catalog()]
        assert len(set(ids)) == len(ids)

    def test_surveyed_maintainers_marked(self):
        grouped = catalog_by_maintainer()
        for name in ("Abuse.ch", "Nixspam", "Stopforumspam", "Cleantalk"):
            assert all(info.surveyed for info in grouped[name])

    def test_sensible_parameters(self):
        for info in build_catalog():
            assert 0 < info.sensitivity <= 1
            assert info.removal_ttl_days >= 1
            assert info.report_lag_days >= 0
            assert info.fmt in FORMATS
            assert info.categories

    def test_categories_valid(self):
        for info in build_catalog():
            assert set(info.categories) <= set(AbuseCategory.ALL)


class TestFormats:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_roundtrip_hosts(self, fmt):
        entries = [
            Prefix(ip_to_int("1.2.3.4"), 32),
            Prefix(ip_to_int("9.9.9.9"), 32),
        ]
        doc = serialize_feed(fmt, entries, list_name="test", day=3)
        assert sorted(parse_feed(fmt, doc)) == sorted(entries)

    def test_cidr_roundtrip_blocks(self):
        entries = [Prefix.from_text("10.0.0.0/24"), Prefix(ip_to_int("1.1.1.1"), 32)]
        doc = serialize_feed("cidr", entries)
        assert sorted(parse_feed("cidr", doc)) == sorted(entries)

    def test_plain_rejects_blocks(self):
        with pytest.raises(ValueError):
            serialize_feed("plain", [Prefix.from_text("10.0.0.0/24")])

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            serialize_feed("xml", [])
        with pytest.raises(ValueError):
            parse_feed("xml", "")

    def test_parse_tolerates_comments_and_blanks(self):
        doc = "# header\n\n1.2.3.4  # inline\n; semicolon comment\n5.6.7.8\n"
        parsed = parse_feed("plain", doc)
        assert len(parsed) == 2

    def test_parse_rejects_garbage_line(self):
        with pytest.raises(FeedFormatError) as err:
            parse_feed("plain", "1.2.3.4\nnot-an-ip\n")
        assert "line 2" in str(err.value)

    def test_csv_header_and_rows(self):
        doc = "ip,category,last_seen\n1.2.3.4,spam,5\n"
        assert parse_feed("csv", doc) == [Prefix(ip_to_int("1.2.3.4"), 32)]

    def test_csv_bad_ip(self):
        with pytest.raises(FeedFormatError):
            parse_feed("csv", "ip,category,last_seen\nxxx,spam,5\n")

    def test_csv_empty(self):
        assert parse_feed("csv", "") == []

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            max_size=20,
            unique=True,
        )
    )
    def test_plain_roundtrip_property(self, ips):
        entries = [Prefix(ip, 32) for ip in ips]
        doc = serialize_feed("plain", entries)
        assert sorted(parse_feed("plain", doc)) == sorted(entries)


class TestListing:
    def test_duration(self):
        l = Listing("x", 1, 10, 12)
        assert l.duration_days() == 3
        assert l.active_on(10) and l.active_on(12)
        assert not l.active_on(13)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Listing("x", 1, 5, 4)

    def test_observed_days_clipping(self):
        l = Listing("x", 1, 10, 50)
        assert l.observed_days([(20, 30)]) == 11
        assert l.observed_days([(0, 5)]) == 0
        assert l.observed_days([(0, 15), (45, 60)]) == 12

    def test_max_observed_run(self):
        l = Listing("x", 1, 10, 50)
        assert l.max_observed_run([(0, 15), (20, 60)]) == 31


class TestListingStore:
    def make_store(self):
        return ListingStore(
            [
                Listing("a", 1, 0, 5),
                Listing("a", 2, 10, 12),
                Listing("b", 1, 100, 120),
            ]
        )

    def test_indexing(self):
        store = self.make_store()
        assert store.list_ids() == ["a", "b"]
        assert len(store.listings_of_list("a")) == 2
        assert len(store.listings_of_ip(1)) == 2
        assert store.all_ips() == {1, 2}

    def test_observed_filtering(self):
        store = self.make_store()
        observed = store.observed([(0, 6)])
        assert observed.all_ips() == {1, 2} - {2} | {1}  # only ip 1 visible
        assert len(observed) == 1

    def test_snapshot(self):
        store = self.make_store()
        assert store.snapshot("a", 3) == {1}
        assert store.snapshot("a", 11) == {2}
        assert store.snapshot("a", 50) == set()

    def test_listing_count_per_list_with_filter(self):
        store = self.make_store()
        counts = store.listing_count_per_list([(0, 200)])
        assert counts == {"a": 2, "b": 1}
        counts = store.listing_count_per_list([(0, 200)], ips={1})
        assert counts == {"a": 1, "b": 1}

    def test_max_run_per_ip(self):
        store = self.make_store()
        runs = store.max_run_per_ip([(0, 200)])
        assert runs[1] == 21
        assert runs[2] == 3


class TestSnapshotsRoundtrip:
    def test_simple_reconstruction(self):
        snapshots = {0: {1, 2}, 1: {1}, 2: {1, 3}}
        listings = listings_from_snapshots(snapshots, "l")
        assert Listing("l", 1, 0, 2) in listings
        assert Listing("l", 2, 0, 0) in listings
        assert Listing("l", 3, 2, 2) in listings

    def test_gap_splits_runs(self):
        snapshots = {0: {1}, 2: {1}}  # day 1 missing: collection outage
        listings = listings_from_snapshots(snapshots, "l")
        assert listings == [Listing("l", 1, 0, 0), Listing("l", 1, 2, 2)]

    def test_empty(self):
        assert listings_from_snapshots({}, "l") == []

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.sets(st.integers(min_value=1, max_value=6), max_size=4),
            max_size=12,
        )
    )
    def test_roundtrip_property(self, snapshots):
        """snapshots -> listings -> snapshots is the identity on the
        observed days."""
        listings = listings_from_snapshots(snapshots, "l")
        store = ListingStore(listings)
        for day, listed in snapshots.items():
            assert store.snapshot("l", day) == listed


class TestFeedGeneration:
    def make_events(self):
        ip = ip_to_int("1.2.3.4")
        return [
            AbuseEvent(day=d, ip=ip, user_key="u1", category=AbuseCategory.SPAM)
            for d in (10, 11, 12)
        ]

    def spam_list(self, **overrides):
        from repro.blocklists.catalog import BlocklistInfo

        defaults = dict(
            list_id="spamlist",
            name="Spam List",
            maintainer="Test",
            categories=(AbuseCategory.SPAM,),
            sensitivity=1.0,
            removal_ttl_days=3.0,
            report_lag_days=0,
        )
        defaults.update(overrides)
        return BlocklistInfo(**defaults)

    def test_full_sensitivity_lists_all_days(self):
        store = generate_listings(
            self.make_events(), [self.spam_list()], random.Random(1),
            horizon_days=100,
        )
        listings = store.listings_of_list("spamlist")
        assert len(listings) == 1
        assert listings[0].first_day == 10
        assert listings[0].last_day == 15  # 12 + ttl 3

    def test_zero_sensitivity_lists_nothing(self):
        store = generate_listings(
            self.make_events(),
            [self.spam_list(sensitivity=0.0)],
            random.Random(1),
            horizon_days=100,
        )
        assert len(store) == 0

    def test_wrong_category_ignored(self):
        store = generate_listings(
            self.make_events(),
            [self.spam_list(categories=(AbuseCategory.DDOS,))],
            random.Random(1),
            horizon_days=100,
        )
        assert len(store) == 0

    def test_gap_beyond_ttl_splits_listing(self):
        ip = ip_to_int("1.2.3.4")
        events = [
            AbuseEvent(day=d, ip=ip, user_key="u", category=AbuseCategory.SPAM)
            for d in (10, 30)
        ]
        store = generate_listings(
            events, [self.spam_list()], random.Random(1), horizon_days=100
        )
        listings = store.listings_of_list("spamlist")
        assert len(listings) == 2

    def test_report_lag_shifts_listing(self):
        store = generate_listings(
            self.make_events(),
            [self.spam_list(report_lag_days=2)],
            random.Random(1),
            horizon_days=100,
        )
        assert store.listings_of_list("spamlist")[0].first_day == 12

    def test_listing_clipped_to_horizon(self):
        ip = ip_to_int("1.2.3.4")
        events = [
            AbuseEvent(day=98, ip=ip, user_key="u", category=AbuseCategory.SPAM)
        ]
        store = generate_listings(
            events, [self.spam_list(removal_ttl_days=10.0)], random.Random(1),
            horizon_days=100,
        )
        assert store.listings_of_list("spamlist")[0].last_day == 100

    def test_lagged_observation_past_horizon_dropped(self):
        """A report that lands after the collection horizon opens no
        listing (regression: it used to build an inverted interval and
        raise ValueError)."""
        ip = ip_to_int("1.2.3.4")
        events = [
            AbuseEvent(day=d, ip=ip, user_key="u", category=AbuseCategory.SPAM)
            for d in (98, 99)
        ]
        store = generate_listings(
            events,
            [self.spam_list(report_lag_days=5)],
            random.Random(1),
            horizon_days=100,
        )
        assert len(store) == 0

    def test_lagged_horizon_mix_keeps_in_horizon_days(self):
        """Observations split by the horizon: in-horizon days still
        merge into their listing, late ones are dropped."""
        ip = ip_to_int("1.2.3.4")
        events = [
            AbuseEvent(day=d, ip=ip, user_key="u", category=AbuseCategory.SPAM)
            for d in (10, 11, 99)
        ]
        store = generate_listings(
            events,
            [self.spam_list(report_lag_days=5)],
            random.Random(1),
            horizon_days=100,
        )
        listings = store.listings_of_list("spamlist")
        assert len(listings) == 1
        assert listings[0].first_day == 15
        assert listings[0].last_day == 19  # 16 + ttl 3

    def test_observation_on_horizon_day_kept(self):
        """An observation landing exactly on the horizon still opens a
        one-day listing (<= boundary, not <)."""
        ip = ip_to_int("1.2.3.4")
        events = [
            AbuseEvent(day=95, ip=ip, user_key="u", category=AbuseCategory.SPAM)
        ]
        store = generate_listings(
            events,
            [self.spam_list(report_lag_days=5)],
            random.Random(1),
            horizon_days=100,
        )
        listings = store.listings_of_list("spamlist")
        assert len(listings) == 1
        assert listings[0].first_day == 100
        assert listings[0].last_day == 100

    def _noisy_events(self):
        """Enough events across categories that sub-1.0 sensitivity
        sampling actually exercises the RNG."""
        rng = random.Random(7)
        categories = (AbuseCategory.SPAM, AbuseCategory.DDOS)
        return [
            AbuseEvent(
                day=rng.randrange(0, 60),
                ip=rng.randrange(1, 400),
                user_key=f"u{i % 9}",
                category=categories[i % 2],
            )
            for i in range(400)
        ]

    def _sampling_catalog(self):
        return [
            self.spam_list(list_id="spam-a", sensitivity=0.5),
            self.spam_list(
                list_id="ddos-b",
                sensitivity=0.4,
                categories=(AbuseCategory.DDOS,),
            ),
            self.spam_list(list_id="spam-c", sensitivity=0.7),
        ]

    @staticmethod
    def _canon(store):
        return sorted(
            (l.list_id, l.ip, l.first_day, l.last_day) for l in store
        )

    def test_listings_invariant_under_catalog_reorder(self):
        """Each list samples from its own derived RNG stream, so
        shuffling the catalog cannot perturb any list's output."""
        events = self._noisy_events()
        catalog = self._sampling_catalog()
        reordered = [catalog[2], catalog[0], catalog[1]]
        first = generate_listings(
            events, catalog, random.Random(5), horizon_days=100
        )
        second = generate_listings(
            events, reordered, random.Random(5), horizon_days=100
        )
        assert len(first) > 0
        assert self._canon(first) == self._canon(second)

    def test_catalog_subset_preserves_each_lists_output(self):
        """Dropping lists from the catalog leaves the survivors'
        listings bit-identical — per-list streams are independent."""
        events = self._noisy_events()
        catalog = self._sampling_catalog()
        full = generate_listings(
            events, catalog, random.Random(5), horizon_days=100
        )
        solo = generate_listings(
            events, [catalog[1]], random.Random(5), horizon_days=100
        )
        assert self._canon(solo) == self._canon(
            ListingStore(full.listings_of_list("ddos-b"))
        )

    def test_materialize_snapshot_parses_back(self):
        info = self.spam_list(fmt="csv")
        store = generate_listings(
            self.make_events(), [info], random.Random(1), horizon_days=100
        )
        doc = materialize_snapshot(info, store, 11)
        parsed = parse_feed("csv", doc)
        assert [p.network for p in parsed] == [ip_to_int("1.2.3.4")]
