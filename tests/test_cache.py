"""Correctness of the persistent content-addressed run cache."""

import dataclasses
import gzip
import pickle

import pytest

from repro.experiments import cache
from repro.experiments.btsetup import CrawlerView
from repro.experiments.runner import RunConfig, run_full


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("RESULTS_CACHE_DIR", str(tmp_path / "cache"))
    yield


@pytest.fixture(scope="module")
def small_run():
    return run_full(RunConfig.small(2020))


class TestKeying:
    def test_key_is_stable(self):
        config = RunConfig.small(2020)
        assert cache.run_key(config) == cache.run_key(RunConfig.small(2020))

    def test_any_field_change_misses(self):
        base = RunConfig.small(2020)
        variants = [
            RunConfig.small(2021),
            dataclasses.replace(
                base,
                scenario=dataclasses.replace(
                    base.scenario,
                    topology=dataclasses.replace(
                        base.scenario.topology,
                        n_eyeball=base.scenario.topology.n_eyeball + 1,
                    ),
                ),
            ),
            dataclasses.replace(
                base,
                crawl=dataclasses.replace(base.crawl, duration_hours=9.0),
            ),
            dataclasses.replace(
                base,
                crawl=dataclasses.replace(base.crawl, n_vantage_points=2),
            ),
            dataclasses.replace(
                base,
                pipeline=dataclasses.replace(base.pipeline, daily_mean_days=2.0),
            ),
            dataclasses.replace(
                base,
                census=dataclasses.replace(base.census, response_rate=0.5),
            ),
        ]
        keys = {cache.run_key(config) for config in variants}
        assert cache.run_key(base) not in keys
        assert len(keys) == len(variants)

    def test_code_fingerprint_salts_the_key(self, monkeypatch):
        config = RunConfig.small(2020)
        before = cache.run_key(config)
        monkeypatch.setattr(cache, "_CODE_FINGERPRINT", "deadbeef")
        assert cache.run_key(config) != before

    def test_unknown_config_type_is_loud(self):
        with pytest.raises(TypeError):
            cache.config_fingerprint(object())


class TestRoundTrip:
    def test_same_config_hits_with_identical_products(self, small_run):
        config = RunConfig.small(2020)
        assert cache.load(config) is None  # cold
        cache.store(config, small_run)
        loaded = cache.load(config)
        assert loaded is not None
        assert loaded.report == small_run.report
        assert loaded.report.render() == small_run.report.render()
        assert loaded.nat == small_run.nat
        assert loaded.census.metrics == small_run.census.metrics
        assert (
            loaded.crawl.bittorrent_ips() == small_run.crawl.bittorrent_ips()
        )

    def test_stored_run_is_stripped(self, small_run):
        config = RunConfig.small(2020)
        cache.store(config, small_run)
        loaded = cache.load(config)
        assert isinstance(loaded.crawl.crawler, CrawlerView)
        assert loaded.crawl.scheduler is None
        assert loaded.crawl.fabric is None
        # ...but the original run object was not mutated.
        assert small_run.crawl.scheduler is not None

    def test_fetch_computes_once(self, small_run):
        config = RunConfig.small(2020)
        calls = []

        def compute():
            calls.append(1)
            return small_run

        first = cache.fetch(config, compute)
        second = cache.fetch(config, compute)
        assert len(calls) == 1
        assert first.report == second.report

    def test_corrupted_entry_falls_back_to_recompute(self, small_run):
        config = RunConfig.small(2020)
        path = cache.store(config, small_run)
        path.write_bytes(b"this is not a gzip stream")
        calls = []

        def compute():
            calls.append(1)
            return small_run

        recovered = cache.fetch(config, compute)
        assert calls == [1]
        assert recovered.report == small_run.report
        # The rewrite repaired the entry for the next reader.
        with gzip.open(path, "rb") as handle:
            assert pickle.load(handle).report == small_run.report

    def test_truncated_gzip_falls_back(self, small_run):
        config = RunConfig.small(2020)
        path = cache.store(config, small_run)
        path.write_bytes(path.read_bytes()[:100])
        assert cache.load(config) is None


class TestMaintenance:
    def test_stats_and_clear(self, small_run):
        config = RunConfig.small(2020)
        assert cache.cache_stats()["entries"] == 0
        cache.load(config)  # miss
        cache.store(config, small_run)
        cache.load(config)  # hit
        stats = cache.cache_stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert cache.clear() == 1
        after = cache.cache_stats()
        assert after["entries"] == 0
        assert after["hits"] == 0 and after["misses"] == 0
