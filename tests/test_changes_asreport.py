"""Tests for change-reason classification and the per-AS reuse report."""

import pytest

from repro.core.asreport import per_as_profiles, render_as_report
from repro.experiments.runner import cached_run
from repro.ripe.changes import classify_changes
from repro.ripe.connlog import (
    KIND_DISCONNECT,
    ConnectionEvent,
    ConnectionLog,
)


def connect(probe, day, ip):
    return ConnectionEvent(probe, day, ip)


def disconnect(probe, day, ip):
    return ConnectionEvent(probe, day, ip, kind=KIND_DISCONNECT)


class TestClassifyChanges:
    def test_no_changes(self):
        log = ConnectionLog([connect(1, 0.0, 10), connect(1, 5.0, 10)])
        reasons = classify_changes(log)
        assert reasons.total() == 0
        assert reasons.outage_fraction() == 0.0
        assert reasons.median_silence_days() == 0.0

    def test_silent_change(self):
        log = ConnectionLog([connect(1, 0.0, 10), connect(1, 5.0, 20)])
        reasons = classify_changes(log)
        assert reasons.total() == 1
        change = reasons.changes[0]
        assert not change.outage_associated
        assert change.old_ip == 10 and change.new_ip == 20
        assert change.silence_days == 5.0

    def test_outage_associated_change(self):
        log = ConnectionLog(
            [
                connect(1, 0.0, 10),
                disconnect(1, 3.0, 10),
                connect(1, 3.4, 20),  # back within the window, new addr
            ]
        )
        reasons = classify_changes(log)
        assert reasons.total() == 1
        assert reasons.changes[0].outage_associated
        assert reasons.outage_fraction() == 1.0

    def test_stale_disconnect_not_attributed(self):
        log = ConnectionLog(
            [
                connect(1, 0.0, 10),
                disconnect(1, 1.0, 10),
                connect(1, 1.2, 10),   # came back, same address
                connect(1, 9.0, 20),   # much later: silent change
            ]
        )
        reasons = classify_changes(log)
        assert reasons.total() == 1
        assert not reasons.changes[0].outage_associated

    def test_window_boundary(self):
        log = ConnectionLog(
            [
                connect(1, 0.0, 10),
                disconnect(1, 5.0, 10),
                connect(1, 7.5, 20),  # 2.5 days later
            ]
        )
        tight = classify_changes(log, attribution_window_days=1.0)
        loose = classify_changes(log, attribution_window_days=3.0)
        assert not tight.changes[0].outage_associated
        assert loose.changes[0].outage_associated

    def test_multiple_probes_isolated(self):
        log = ConnectionLog(
            [
                connect(1, 0.0, 10),
                disconnect(1, 2.0, 10),
                connect(2, 0.0, 99),
                connect(2, 2.1, 88),  # probe 2 never disconnected
            ]
        )
        reasons = classify_changes(log)
        assert reasons.total() == 1
        assert not reasons.changes[0].outage_associated

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            classify_changes(ConnectionLog(), attribution_window_days=0)

    def test_scenario_log_classification_runs(self):
        run = cached_run("small")
        reasons = classify_changes(run.scenario.atlas_log)
        assert reasons.total() > 0
        assert 0.0 <= reasons.outage_fraction() <= 1.0


class TestAsReport:
    def test_profiles_cover_all_blocklisted(self):
        run = cached_run("small")
        profiles = per_as_profiles(run.analysis)
        assert sum(p.blocklisted for p in profiles) == len(
            run.analysis.blocklisted_ips
        )

    def test_profiles_sorted_and_truncated(self):
        run = cached_run("small")
        profiles = per_as_profiles(run.analysis, top=3)
        assert len(profiles) <= 3
        counts = [p.blocklisted for p in profiles]
        assert counts == sorted(counts, reverse=True)

    def test_counts_consistent(self):
        run = cached_run("small")
        for profile in per_as_profiles(run.analysis):
            assert profile.bittorrent <= profile.blocklisted
            assert profile.nated <= profile.blocklisted
            assert profile.dynamic <= profile.blocklisted
            assert 0.0 <= profile.reuse_share() <= 1.0

    def test_render(self):
        run = cached_run("small")
        text = render_as_report(run.analysis, top=5)
        assert "AS" in text and "reuse share" in text
        assert "eyeball" in text or "hosting" in text
