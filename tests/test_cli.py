"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCatalogCommand:
    def test_prints_table2(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "Bad IPs" in out
        assert "151" in out
        assert "Total" in out


class TestSurveyCommand:
    def test_prints_table1_and_fig9(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "External blocklists" in out
        assert "Figure 9" in out
        assert "spam" in out

    def test_seed_changes_nothing_structural(self, capsys):
        assert main(["survey", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "34 of 65" in out


class TestRunCommand:
    def test_small_run_with_greylist(self, capsys, tmp_path):
        greylist = tmp_path / "grey.txt"
        assert main(
            ["run", "--preset", "small", "--greylist", str(greylist)]
        ) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "measured" in out
        assert "ping response rate" in out
        content = greylist.read_text()
        assert content.startswith("#")
        assert "nat" in content or "dynamic" in content

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "galactic"])


class TestParser:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCacheCommand:
    def test_stats_on_missing_dir_is_clean(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "RESULTS_CACHE_DIR", str(tmp_path / "never-created")
        )
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "not created yet" in out

    def test_clear_on_missing_dir_is_clean(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "RESULTS_CACHE_DIR", str(tmp_path / "never-created")
        )
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "nothing to clear" in out

    def test_clear_on_empty_dir_is_clean(
        self, capsys, tmp_path, monkeypatch
    ):
        empty = tmp_path / "empty"
        empty.mkdir()
        monkeypatch.setenv("RESULTS_CACHE_DIR", str(empty))
        assert main(["cache", "clear"]) == 0
        assert "already empty" in capsys.readouterr().out

    def test_stats_on_empty_dir_reports_zero_entries(
        self, capsys, tmp_path, monkeypatch
    ):
        empty = tmp_path / "empty"
        empty.mkdir()
        monkeypatch.setenv("RESULTS_CACHE_DIR", str(empty))
        assert main(["cache", "stats"]) == 0
        assert "entries   : 0" in capsys.readouterr().out


class TestExportBundle:
    def test_export_dir_writes_all_artefacts(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        assert main(
            ["run", "--preset", "small", "--export-dir", str(out)]
        ) == 0
        names = {p.name for p in out.iterdir()}
        assert names == {
            "greylist.txt",
            "as_report.txt",
            "window_report.txt",
            "headline.txt",
            "crawl_log.jsonl",
            "atlas_log.jsonl",
            "world.json",
            "listings.jsonl",
        }
        # The serialized world and logs reload cleanly.
        from repro.bittorrent.crawllog import read_jsonl as read_crawl
        from repro.internet.serialize import load_listings, load_truth
        from repro.ripe.connlog import read_jsonl as read_atlas

        assert len(read_crawl(out / "crawl_log.jsonl")) > 100
        assert len(read_atlas(out / "atlas_log.jsonl")) > 100
        truth = load_truth(out / "world.json")
        assert truth.lines
        assert len(load_listings(out / "listings.jsonl")) > 10
