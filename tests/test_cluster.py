"""Sharded cluster tests: partitioning, restricted indexes, routing,
failover, degradation, and the ISSUE's acceptance scenario.

The acceptance bar: a cluster following a live update log must return
verdicts field-for-field equal to the single-process server's for
every blocklisted IP, under concurrent clients, *while* a shard is
killed and restarted mid-run — the only tolerated deviation being
explicit ``SHARD_UNAVAILABLE`` degradation during the outage window.
"""

import socket
import threading
import time

import pytest

from repro.cli import main
from repro.net.ipv4 import MAX_IPV4, int_to_ip
from repro.cluster import (
    MAX_SHARDS,
    LocalCluster,
    PartitionMap,
    Router,
    SHARD_UNAVAILABLE,
    ShardRange,
    filter_batch,
)
from repro.service.client import ReputationClient, ServiceError
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer
from repro.service.wire import WireError, recv_frame, send_frame
from repro.stream.delta import day_advance_batches
from repro.stream.epoch import EpochIndex, index_as_of
from repro.stream.log import UpdateLogWriter


@pytest.fixture(scope="module")
def full_index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


@pytest.fixture(scope="module")
def observed(small_full_run):
    return small_full_run.analysis.observed


@pytest.fixture(scope="module")
def start_day(small_full_run):
    return int(small_full_run.analysis.windows[0][0])


@pytest.fixture(scope="module")
def replay_batches(observed, start_day):
    return list(day_advance_batches(observed, start_day=start_day))


@pytest.fixture(scope="module")
def listed_ips(small_full_run):
    return sorted(small_full_run.analysis.blocklisted_ips)


class TestPartition:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 8, 16, 255])
    def test_covers_the_space_contiguously(self, shards):
        partition = PartitionMap(shards)
        assert len(partition) == shards
        ranges = partition.ranges
        assert ranges[0].lo == 0
        assert ranges[-1].hi == MAX_IPV4
        for left, right in zip(ranges, ranges[1:]):
            assert right.lo == left.hi + 1

    @pytest.mark.parametrize("shards", [1, 3, 7, 64])
    def test_ranges_are_slash24_aligned(self, shards):
        for shard_range in PartitionMap(shards).ranges:
            assert shard_range.lo & 0xFF == 0
            assert shard_range.hi & 0xFF == 0xFF

    def test_a_slash24_never_straddles_shards(self):
        partition = PartitionMap(7)
        for shard_range in partition.ranges:
            boundary = shard_range.lo
            # Every address of the /24 containing any boundary lands
            # on the same shard — the dynamic-verdict invariant.
            block = boundary >> 8
            owners = {
                partition.shard_of((block << 8) | offset)
                for offset in (0, 1, 127, 254, 255)
            }
            assert len(owners) == 1

    def test_shard_of_matches_linear_scan(self):
        partition = PartitionMap(5)
        probes = [
            0, 1, 255, 256, MAX_IPV4, MAX_IPV4 - 255,
            *(r.lo for r in partition.ranges),
            *(r.hi for r in partition.ranges),
            *((r.lo + r.hi) // 2 for r in partition.ranges),
        ]
        for ip in probes:
            expected = next(
                i
                for i, r in enumerate(partition.ranges)
                if r.contains(ip)
            )
            assert partition.shard_of(ip) == expected

    def test_balanced_within_one_block(self):
        partition = PartitionMap(3)
        sizes = {r.size() for r in partition.ranges}
        assert max(sizes) - min(sizes) <= 256

    def test_wire_round_trip(self):
        partition = PartitionMap(4)
        wire = partition.to_wire()
        assert wire["shards"] == 4
        rebuilt = [ShardRange.from_wire(pair) for pair in wire["ranges"]]
        assert rebuilt == list(partition.ranges)

    @pytest.mark.parametrize("bad", [0, -1, MAX_SHARDS + 1])
    def test_bad_shard_counts_rejected(self, bad):
        with pytest.raises(ValueError):
            PartitionMap(bad)

    def test_unaligned_range_rejected(self):
        with pytest.raises(ValueError):
            ShardRange(1, 255)
        with pytest.raises(ValueError):
            ShardRange(0, 254)


class TestRestrict:
    def test_union_of_slices_covers_the_index(self, full_index):
        partition = PartitionMap(3)
        slices = [
            full_index.restrict(r.lo, r.hi) for r in partition.ranges
        ]
        sliced_ips = set()
        for piece in slices:
            sliced_ips.update(ip for ip, _ in piece.interval_items())
        assert sliced_ips == {
            ip for ip, _ in full_index.interval_items()
        }

    def test_slice_verdicts_match_full_index(self, full_index):
        partition = PartitionMap(3)
        full_engine = QueryEngine(full_index)
        for shard_range in partition.ranges:
            piece = full_index.restrict(shard_range.lo, shard_range.hi)
            engine = QueryEngine(piece)
            in_range = [
                ip
                for ip, _ in full_index.interval_items()
                if shard_range.contains(ip)
            ]
            for ip in in_range:
                assert (
                    engine.query(ip).to_wire()
                    == full_engine.query(ip).to_wire()
                )

    def test_out_of_range_addresses_are_gone(self, full_index):
        partition = PartitionMap(3)
        first = partition.ranges[0]
        piece = full_index.restrict(first.lo, first.hi)
        outside = [
            ip
            for ip, _ in full_index.interval_items()
            if not first.contains(ip)
        ]
        for ip in outside[:10]:
            assert not list(piece.intervals_of(ip))

    def test_bad_range_rejected(self, full_index):
        with pytest.raises(ValueError):
            full_index.restrict(10, 5)
        with pytest.raises(ValueError):
            full_index.restrict(-1, 10)


def _wire_verdicts(engine, ips, day=None):
    return {ip: engine.query(ip, day).to_wire() for ip in ips}


class TestRouterStatic:
    @pytest.fixture(scope="class")
    def cluster(self, full_index):
        with LocalCluster(full_index, shards=3, mode="thread") as c:
            assert c.router.wait_healthy(10.0)
            yield c

    @pytest.fixture(scope="class")
    def client(self, cluster):
        with ReputationClient(*cluster.address) as c:
            yield c

    def test_point_queries_match_single_process(
        self, full_index, listed_ips, client
    ):
        single = QueryEngine(full_index)
        for ip in listed_ips:
            assert client.query(ip) == single.query(ip).to_wire()

    def test_batch_merges_in_request_order(
        self, full_index, listed_ips, client
    ):
        single = QueryEngine(full_index)
        # Interleave shards so the scatter-gather merge is exercised.
        ips = listed_ips[::-1]
        got = client.query_batch([(ip, None) for ip in ips])
        assert [v["ip"] for v in got] == [int_to_ip(ip) for ip in ips]
        for ip, verdict in zip(ips, got):
            assert verdict == single.query(ip).to_wire()

    def test_hello_reports_fleet(self, client):
        hello = client.hello()
        assert hello["service"] == "repro-reputation"
        assert hello["epoch"] == hello["seq"] == 0
        fleet = hello["cluster"]
        assert fleet["shards"] == 3
        assert fleet["shards_up"] == 3
        assert fleet["epoch_min"] == fleet["epoch_max"] == 0

    def test_stats_aggregate_index_totals(self, client, full_index):
        stats = client.stats()
        sizes = full_index.stats()
        for key in ("ips", "intervals", "nated_ips", "dynamic_prefixes"):
            assert stats["index"][key] == sizes[key]
        assert stats["index"]["lists"] == sizes["lists"]
        assert len(stats["shards"]) == 3
        assert all(
            backend["healthy"]
            for shard in stats["shards"]
            for backend in shard["backends"]
        )

    def test_ping_and_bad_requests(self, cluster, client):
        assert client.call({"op": "ping"}) == "pong"
        with pytest.raises(ServiceError, match="unknown op"):
            client.call({"op": "flood"})
        with pytest.raises(ServiceError, match="bad ip"):
            client.call({"op": "query", "ip": [1]})
        with pytest.raises(ServiceError, match="queries"):
            client.call({"op": "batch"})

    def test_router_counters_accumulate(self, cluster, client):
        before = client.stats()["router"]
        client.query("1.2.3.4")
        client.query_batch([("1.2.3.4", None), ("200.2.3.4", None)])
        after = client.stats()["router"]
        assert after["point"] == before["point"] + 1
        assert after["batch"] == before["batch"] + 1
        assert after["batch_queries"] == before["batch_queries"] + 2

    def test_mismatched_backend_list_rejected(self, full_index):
        with pytest.raises(ValueError, match="backend"):
            Router(PartitionMap(3), [[("127.0.0.1", 1)]])

    def test_empty_batch_returns_empty(self, cluster):
        # Regression: zero shard fan-outs must still produce a reply
        # (the merge counter starts at zero, so nothing else would
        # ever complete the slot) — on both the packed-binary path
        # (an FT_BATCH_REQ with count 0) and the JSON one.
        for codec in ("binary", "json"):
            with ReputationClient(
                *cluster.address, codec=codec
            ) as client:
                assert client.query_batch([]) == []


class TestFailover:
    def test_replica_answers_when_primary_dies(self, full_index, listed_ips):
        with LocalCluster(
            full_index, shards=2, replicas=1, mode="thread"
        ) as cluster:
            assert cluster.router.wait_healthy(10.0)
            single = QueryEngine(full_index)
            with ReputationClient(*cluster.address) as client:
                cluster.kill_primary(0)
                for ip in listed_ips:
                    assert (
                        client.query(ip) == single.query(ip).to_wire()
                    )
                stats = client.stats()
                assert stats["router"]["failovers"] >= 1
                shard0 = stats["shards"][0]["backends"]
                assert not shard0[0]["healthy"]
                assert shard0[1]["healthy"]
                assert stats["cluster"]["shards_up"] == 2

    def test_restarted_primary_rejoins(self, full_index, listed_ips):
        with LocalCluster(
            full_index, shards=2, replicas=1, mode="thread"
        ) as cluster:
            assert cluster.router.wait_healthy(10.0)
            with ReputationClient(*cluster.address) as client:
                cluster.kill_primary(1)
                client.query("200.2.3.4")  # lands on shard 1's replica
                cluster.restart_primary(1)
                assert cluster.router.wait_healthy(10.0)
                stats = client.stats()
                assert all(
                    backend["healthy"]
                    for shard in stats["shards"]
                    for backend in shard["backends"]
                )


class TestDegraded:
    def test_dead_shard_degrades_not_fails(self, full_index, listed_ips):
        with LocalCluster(full_index, shards=3, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            partition = cluster.partition
            dead = partition.shard_of(listed_ips[0])
            single = QueryEngine(full_index)
            with ReputationClient(*cluster.address) as client:
                cluster.kill_primary(dead)

                # Point query on the dead shard: explicit error reply.
                with pytest.raises(
                    ServiceError, match=SHARD_UNAVAILABLE
                ):
                    client.query(listed_ips[0])

                # Batch: only the dead shard's positions degrade.
                got = client.query_batch(
                    [(ip, None) for ip in listed_ips]
                )
                for ip, verdict in zip(listed_ips, got):
                    if partition.shard_of(ip) == dead:
                        assert verdict == {
                            "ip": int_to_ip(ip),
                            "day": None,
                            "error": SHARD_UNAVAILABLE,
                            "shard": dead,
                        }
                    else:
                        assert (
                            verdict == single.query(ip).to_wire()
                        )
                assert client.stats()["router"]["degraded"] >= 1

                # Live shards' hello still answers, reporting the hole.
                hello = client.hello()
                assert hello["cluster"]["shards_up"] == 2

                # Restart: full service resumes.
                cluster.restart_primary(dead)
                assert cluster.router.wait_healthy(10.0)
                assert (
                    client.query(listed_ips[0])
                    == single.query(listed_ips[0]).to_wire()
                )


class _MisbehavingBackend:
    """A fake shard backend that answers pings — so heartbeat probes
    keep it looking healthy — but mistreats every real request:
    ``garbled`` replies with a non-dict JSON frame, ``silent`` reads
    the request and never answers (which also swallows the router's
    binary-codec hello)."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.address = self._sock.getsockname()[:2]
        self._accepting = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accepting.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        with conn:
            try:
                while True:
                    request = recv_frame(conn)
                    is_ping = (
                        isinstance(request, dict)
                        and request.get("op") == "ping"
                    )
                    if is_ping:
                        send_frame(conn, {"ok": True, "result": "pong"})
                    elif self.mode == "garbled":
                        send_frame(conn, ["not", "a", "reply", "object"])
            except (WireError, OSError):
                return

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TestBackendMisbehavior:
    @pytest.fixture()
    def real_backend(self, full_index):
        with ReputationServer(QueryEngine(full_index)) as server:
            server.start()
            yield server

    def _router(self, fake, real_backend, codec):
        router = Router(
            PartitionMap(1),
            [[tuple(fake.address), real_backend.address]],
            backend_timeout=1.0,
            heartbeat_interval=30.0,
            backend_codec=codec,
        )
        router.start()
        return router

    def test_garbled_reply_fails_over_without_hanging(
        self, full_index, listed_ips, real_backend
    ):
        # Regression: a reply that breaks decoding *after* its sub was
        # popped from the pending queue must still fail that sub over
        # — losing it would stall the downstream slot forever.
        fake = _MisbehavingBackend("garbled")
        router = self._router(fake, real_backend, "json")
        try:
            single = QueryEngine(full_index)
            ip = listed_ips[0]
            with ReputationClient(
                *router.address, timeout=10.0
            ) as client:
                assert client.query(ip) == single.query(ip).to_wire()
                assert client.stats()["router"]["failovers"] >= 1
        finally:
            router.shutdown()
            fake.close()

    def test_handshake_blackhole_times_out_and_fails_over(
        self, full_index, listed_ips, real_backend
    ):
        # A backend that accepts connections and answers probes but
        # never completes the codec handshake: the queued sub's
        # deadline fires on the loop's sweep (the loop itself stays
        # live) and the query fails over to the replica.
        fake = _MisbehavingBackend("silent")
        router = self._router(fake, real_backend, "binary")
        try:
            single = QueryEngine(full_index)
            ip = listed_ips[0]
            with ReputationClient(
                *router.address, timeout=10.0
            ) as client:
                started = time.monotonic()
                assert client.query(ip) == single.query(ip).to_wire()
                assert time.monotonic() - started < 8.0
        finally:
            router.shutdown()
            fake.close()


class TestFilterBatch:
    def test_keeps_only_in_range_deltas(self, replay_batches):
        partition = PartitionMap(3)
        for batch in replay_batches[:20]:
            kept_total = 0
            for shard_range in partition.ranges:
                piece = filter_batch(batch, shard_range)
                assert piece.seq == batch.seq
                assert piece.day == batch.day
                assert all(
                    shard_range.contains(d.ip) for d in piece.deltas
                )
                kept_total += len(piece.deltas)
            assert kept_total == len(batch.deltas)

    def test_unfiltered_batch_is_not_copied(self, replay_batches):
        whole = ShardRange(0, MAX_IPV4)
        batch = replay_batches[0]
        assert filter_batch(batch, whole) is batch


class TestClusterFollowEndToEnd:
    """The acceptance scenario: live log, concurrent clients, one
    shard killed and restarted mid-run."""

    def test_fidelity_under_shard_failure(
        self,
        tmp_path,
        small_full_run,
        full_index,
        observed,
        start_day,
        replay_batches,
        listed_ips,
    ):
        analysis = small_full_run.analysis
        days = [d for w in analysis.windows for d in w]
        final_seq = replay_batches[-1].seq

        log_path = tmp_path / "updates.gz"
        writer = UpdateLogWriter(log_path, start_day=start_day)

        cluster = LocalCluster(
            full_index,
            shards=3,
            replicas=0,
            follow=log_path,
            start_day=start_day,
            mode="thread",
            poll_interval=0.002,
        )
        failures = []
        outage_errors = [0]
        produced = threading.Event()
        stop_chaos = threading.Event()
        victim = cluster.partition.shard_of(listed_ips[0])

        def produce():
            for batch in replay_batches:
                writer.append(batch)
                time.sleep(0.001)
            produced.set()

        def chaos():
            # Kill the victim shard mid-replay, then bring it back.
            time.sleep(0.05)
            cluster.kill_primary(victim)
            time.sleep(0.1)
            cluster.restart_primary(victim)
            stop_chaos.set()

        def consume(worker_seed):
            try:
                with ReputationClient(*cluster.address) as client:
                    for i in range(150):
                        ip = listed_ips[
                            (worker_seed + 3 * i) % len(listed_ips)
                        ]
                        day = days[(worker_seed + i) % len(days)]
                        try:
                            verdict = client.query(ip, day)
                        except ServiceError as exc:
                            if SHARD_UNAVAILABLE in str(exc):
                                # The only tolerated failure, and only
                                # for the victim's addresses.
                                assert (
                                    cluster.partition.shard_of(ip)
                                    == victim
                                )
                                outage_errors[0] += 1
                                continue
                            raise
                        if verdict["ip"] != int_to_ip(ip):
                            failures.append(("wrong ip", verdict))
            except Exception as exc:  # pragma: no cover
                failures.append(("client died", repr(exc)))

        try:
            cluster.start()
            assert cluster.router.wait_healthy(10.0)
            workers = [
                threading.Thread(target=consume, args=(seed,))
                for seed in range(4)
            ]
            producer = threading.Thread(target=produce)
            chaos_thread = threading.Thread(target=chaos)
            for thread in workers + [producer, chaos_thread]:
                thread.start()
            for thread in workers + [producer, chaos_thread]:
                thread.join(timeout=120.0)
            assert produced.is_set() and stop_chaos.is_set()
            assert not failures, failures[:5]

            # Every shard (including the restarted one, which replays
            # the log from its pristine restricted base) catches up.
            assert cluster.wait_for_seq(final_seq, timeout=60.0)
            assert cluster.router.wait_healthy(10.0)

            # Field-for-field equality with the single-process
            # streamed engine, for every blocklisted IP on every
            # window boundary day.
            base = index_as_of(full_index, start_day)
            epochs = EpochIndex(base, day=start_day)
            epochs.apply_all(replay_batches)
            single = QueryEngine(epochs)
            with ReputationClient(*cluster.address) as client:
                hello = client.hello()
                assert hello["epoch"] == hello["seq"] == final_seq
                fleet = hello["cluster"]
                assert fleet["epoch_min"] == fleet["epoch_max"]
                for day in days:
                    got = client.query_batch(
                        [(ip, day) for ip in listed_ips]
                    )
                    for ip, verdict in zip(listed_ips, got):
                        want = single.query(ip, day).to_wire()
                        assert verdict == want, (int_to_ip(ip), day)
        finally:
            cluster.close()


class TestClusterCli:
    def test_bad_shard_count_is_error(self, capsys):
        assert main(["cluster", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_bad_replicas_is_error(self, capsys):
        assert main(["cluster", "--replicas", "-1"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_bad_port_is_error(self, capsys):
        assert main(["cluster", "--port", "70000"]) == 2
        assert "port" in capsys.readouterr().err

    def test_follow_conflicts_with_snapshot(self, capsys):
        code = main(
            [
                "cluster", "--follow", "x.gz", "--snapshot", "y.idx",
                "--port", "0",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_conn_timeout_is_error(self, capsys):
        assert main(["serve", "--conn-timeout", "0"]) == 2
        assert "conn-timeout" in capsys.readouterr().err
        assert main(["cluster", "--conn-timeout", "-1"]) == 2
        assert "conn-timeout" in capsys.readouterr().err
