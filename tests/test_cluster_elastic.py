"""Online elasticity: manual shard splits under live traffic, the
router's partition cutover machinery, and the closed-loop acceptance
scenario — a hot-range mix drives one shard hot, the auto-splitter
rebalances online, and not a single query fails or returns a verdict
different from a static single-process engine's.
"""

import threading
import time

import pytest

from repro.cluster import AutoSplitter, LocalCluster, PartitionMap
from repro.loadgen import (
    LoadHarness,
    TrafficGenerator,
    get_mix,
    population_from_analysis,
)
from repro.net.ipv4 import int_to_ip
from repro.service.client import ReputationClient
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex


@pytest.fixture(scope="module")
def full_index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


@pytest.fixture(scope="module")
def analysis(small_full_run):
    return small_full_run.analysis


@pytest.fixture(scope="module")
def listed_ips(small_full_run):
    return sorted(small_full_run.analysis.blocklisted_ips)


class TestManualSplit:
    def test_split_under_live_traffic_loses_nothing(
        self, full_index, listed_ips
    ):
        """Clients hammer the router while a shard splits; every reply
        stays field-for-field identical to the static engine and no
        request fails."""
        single = QueryEngine(full_index)
        want = {ip: single.query(ip).to_wire() for ip in listed_ips}
        with LocalCluster(full_index, shards=3, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            victim = cluster.partition.shard_of(listed_ips[0])
            failures = []
            stop = threading.Event()

            def hammer(offset):
                try:
                    with ReputationClient(*cluster.address) as client:
                        i = 0
                        while not stop.is_set():
                            ip = listed_ips[
                                (offset + i) % len(listed_ips)
                            ]
                            if client.query(ip) != want[ip]:
                                failures.append(("mismatch", ip))
                            pairs = [
                                (p, None)
                                for p in listed_ips[offset::3]
                            ]
                            got = client.query_batch(pairs)
                            for (p, _), verdict in zip(pairs, got):
                                if verdict != want[p]:
                                    failures.append(("batch", p))
                            i += 1
                except Exception as exc:  # pragma: no cover
                    failures.append(("client died", repr(exc)))

            workers = [
                threading.Thread(target=hammer, args=(offset,))
                for offset in range(3)
            ]
            for worker in workers:
                worker.start()
            time.sleep(0.1)  # traffic in flight before the cutover
            info = cluster.split_shard(victim)
            time.sleep(0.1)  # and after it
            stop.set()
            for worker in workers:
                worker.join(timeout=30.0)

            assert not failures, failures[:5]
            assert info["shard"] == victim
            assert info["new_shards"] == [victim, victim + 1]
            assert info["shards"] == 4
            assert len(cluster.partition) == 4
            # The halves tile exactly the old range.
            left = cluster.partition.range_of(victim)
            right = cluster.partition.range_of(victim + 1)
            assert right.lo == left.hi + 1

            # The router agrees: 4 shards, bumped epoch, and verdicts
            # still come from the right backends.
            snapshot = cluster.router.load_snapshot()
            assert snapshot["partition_epoch"] == 1
            assert len(snapshot["shards"]) == 4
            with ReputationClient(*cluster.address) as client:
                assert client.hello()["cluster"]["shards"] == 4
                got = client.query_batch(
                    [(ip, None) for ip in listed_ips]
                )
                for ip, verdict in zip(listed_ips, got):
                    assert verdict == want[ip], int_to_ip(ip)

    def test_split_routes_hits_to_the_new_shards(
        self, full_index, listed_ips
    ):
        with LocalCluster(full_index, shards=2, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            victim = cluster.partition.shard_of(listed_ips[0])
            cluster.split_shard(victim)
            with ReputationClient(*cluster.address) as client:
                for ip in listed_ips:
                    client.query(ip)
            snapshot = cluster.router.load_snapshot()
            by_shard = {
                row["shard"]: row["hits"] for row in snapshot["shards"]
            }
            for ip in listed_ips:
                owner = cluster.partition.shard_of(ip)
                assert by_shard[owner] > 0
                break

    def test_repeated_splits_keep_serving(self, full_index, listed_ips):
        single = QueryEngine(full_index)
        with LocalCluster(full_index, shards=2, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            for _ in range(3):
                victim = cluster.partition.shard_of(listed_ips[0])
                cluster.split_shard(victim)
            assert len(cluster.partition) == 5
            assert cluster.router.load_snapshot()["partition_epoch"] == 3
            with ReputationClient(*cluster.address) as client:
                got = client.query_batch(
                    [(ip, None) for ip in listed_ips]
                )
                for ip, verdict in zip(listed_ips, got):
                    assert verdict == single.query(ip).to_wire()

    def test_unstarted_cluster_rejects_split(self, full_index):
        cluster = LocalCluster(full_index, shards=2, mode="thread")
        with pytest.raises(RuntimeError, match="not started"):
            cluster.split_shard(0)
        cluster.close()

    def test_apply_partition_rejects_mismatched_backends(
        self, full_index
    ):
        with LocalCluster(full_index, shards=2, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            with pytest.raises(ValueError, match="backend"):
                cluster.router.apply_partition(
                    PartitionMap(3), [[("127.0.0.1", 1)]]
                )


class TestAutoSplitAcceptance:
    """The ISSUE's elasticity bar: a seeded hot-range mix against a
    live cluster must trigger an online split, with zero failed
    queries and every verdict identical to the static engine's."""

    def test_hot_range_triggers_split_with_full_fidelity(
        self, full_index, analysis
    ):
        mix = get_mix("hot-range")
        ips, days = population_from_analysis(mix, analysis)
        generator = TrafficGenerator(mix, ips, days, seed=11)
        events = generator.schedule(6000, 4000.0)

        with LocalCluster(full_index, shards=3, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            splitter = AutoSplitter(
                cluster,
                interval=0.15,
                factor=1.8,
                sustain=2,
                min_hits=50,
                max_shards=8,
            )
            splitter.start()
            try:
                harness = LoadHarness(
                    *cluster.address, conns=3, capture=True
                )
                report = harness.run(
                    events,
                    mix=mix.name,
                    seed=11,
                    target_qps=4000.0,
                )
            finally:
                splitter.stop()

            splits = splitter.splits()
            assert splits, splitter.events
            assert len(cluster.partition) >= 4
            assert (
                cluster.router.load_snapshot()["partition_epoch"]
                >= len(splits)
            )

            # Zero lost queries through every cutover.
            assert report.sent == 6000
            assert report.failed == 0, report.as_dict()
            assert report.ok == 6000

            # Field-for-field fidelity for every captured verdict.
            engine = QueryEngine(full_index)
            assert len(harness.captured) == report.ok
            for ip, day, verdict in harness.captured:
                want = engine.query(ip, day).to_wire()
                assert verdict == want, (int_to_ip(ip), day)

            # The split landed where the heat was: the hot /24 sits
            # inside one of the shards produced by the first split.
            hot_block_ip = ips[0]
            first = splits[0]
            assert first["shard"] in range(len(cluster.partition))
            owner = cluster.partition.shard_of(hot_block_ip)
            owner_range = cluster.partition.range_of(owner)
            assert owner_range.contains(hot_block_ip)

    def test_splitter_skips_at_max_shards(self, full_index, analysis):
        mix = get_mix("hot-range")
        ips, days = population_from_analysis(mix, analysis)
        events = TrafficGenerator(mix, ips, days, seed=5).schedule(
            1500, 5000.0
        )
        with LocalCluster(full_index, shards=2, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            splitter = AutoSplitter(
                cluster,
                interval=0.1,
                factor=1.5,
                sustain=2,
                min_hits=50,
                max_shards=2,  # already there: every nomination skips
            )
            splitter.start()
            try:
                report = LoadHarness(*cluster.address, conns=2).run(
                    events, mix=mix.name
                )
            finally:
                splitter.stop()
            assert report.failed == 0
            assert len(cluster.partition) == 2
            assert not splitter.splits()
            skips = [
                e for e in splitter.events if e["action"] == "skip"
            ]
            for event in skips:
                assert "max_shards" in event["reason"]

    def test_splitter_knob_validation(self, full_index):
        cluster = LocalCluster(full_index, shards=2, mode="thread")
        with pytest.raises(ValueError, match="interval"):
            AutoSplitter(cluster, interval=0.0)
        with pytest.raises(ValueError, match="max_shards"):
            AutoSplitter(cluster, max_shards=0)
        splitter = AutoSplitter(cluster)
        splitter.start()
        with pytest.raises(RuntimeError, match="already started"):
            splitter.start()
        splitter.stop()
        cluster.close()
