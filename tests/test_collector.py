"""Tests for the BLAG-style daily collector."""

import random

import pytest

from repro.blocklists.catalog import build_catalog
from repro.blocklists.collector import Collector, publishing_fetcher
from repro.blocklists.timeline import Listing, ListingStore
from repro.internet.scenario import ScenarioConfig, build_scenario


def tiny_store():
    return ListingStore(
        [
            Listing("alpha", 0x01000001, 10, 14),
            Listing("alpha", 0x01000002, 12, 12),
            Listing("beta", 0x02000001, 10, 20),
        ]
    )


def tiny_catalog():
    catalog = [
        info
        for info in build_catalog()
        if info.fmt in ("plain", "csv")
    ][:2]
    # Rename so list_ids match the tiny store.
    from dataclasses import replace

    return [
        replace(catalog[0], list_id="alpha"),
        replace(catalog[1], list_id="beta"),
    ]


class TestCollectorRoundtrip:
    def test_perfect_collection_reconstructs_listings(self):
        source = tiny_store()
        catalog = tiny_catalog()
        collector = Collector(catalog, publishing_fetcher(source))
        run = collector.collect(range(10, 21))
        assert run.stats.success_rate() == 1.0
        assert not run.gaps
        # Every original listing visible in the collected window must
        # be reconstructed exactly.
        assert run.store.snapshot("alpha", 12) == {0x01000001, 0x01000002}
        assert run.store.snapshot("alpha", 15) == set()
        reconstructed = sorted(
            (l.list_id, l.ip, l.first_day, l.last_day) for l in run.store
        )
        assert reconstructed == [
            ("alpha", 0x01000001, 10, 14),
            ("alpha", 0x01000002, 12, 12),
            ("beta", 0x02000001, 10, 20),
        ]

    def test_fetch_failures_create_gaps(self):
        source = tiny_store()
        catalog = tiny_catalog()
        collector = Collector(
            catalog,
            publishing_fetcher(source),
            failure_rate=0.5,
            rng=random.Random(1),
        )
        run = collector.collect(range(10, 21))
        assert run.stats.failed > 0
        assert run.gaps
        assert run.stats.success_rate() < 1.0

    def test_gap_splits_presence(self):
        source = tiny_store()
        catalog = tiny_catalog()

        def flaky(info, day):
            if info.list_id == "beta" and day == 15:
                raise IOError("feed down")
            return publishing_fetcher(source)(info, day)

        collector = Collector(catalog, flaky)
        run = collector.collect(range(10, 21))
        beta = run.store.listings_of_list("beta")
        assert len(beta) == 2  # split at the missing day
        assert ("beta", 15) in run.gaps

    def test_parse_errors_counted(self):
        catalog = tiny_catalog()

        def garbage(info, day):
            return "!!! not a feed !!!\n"

        collector = Collector(catalog, garbage)
        run = collector.collect([1, 2])
        assert run.stats.parse_errors == run.stats.attempted
        assert len(run.store) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Collector([], publishing_fetcher(tiny_store()))
        with pytest.raises(ValueError):
            Collector(
                tiny_catalog(),
                publishing_fetcher(tiny_store()),
                failure_rate=1.5,
            )
        with pytest.raises(ValueError):
            Collector(
                tiny_catalog(),
                publishing_fetcher(tiny_store()),
                failure_rate=0.2,
            )


class TestCollectorOnScenario:
    def test_collects_scenario_feeds(self):
        """End to end through the real formats: the scenario's feeds
        published daily, collected, and reconstructed."""
        sc = build_scenario(ScenarioConfig.small(seed=8))
        window = sc.windows[0]
        days = range(window[0], window[0] + 6)
        collector = Collector(
            sc.catalog, publishing_fetcher(sc.listings)
        )
        run = collector.collect(days)
        assert run.stats.success_rate() == 1.0
        # Snapshots must agree exactly with the source store.
        for info in sc.catalog[:25]:
            for day in days:
                assert run.store.snapshot(info.list_id, day) == (
                    sc.listings.snapshot(info.list_id, day)
                )
