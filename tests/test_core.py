"""Tests for the core reuse analysis on handcrafted inputs."""

import pytest

from repro.blocklists.timeline import Listing, ListingStore
from repro.core.funnel import compute_funnel
from repro.core.greylist import (
    BlockAction,
    build_greylist,
    recommend_action,
    render_greylist,
)
from repro.core.impact import duration_stats, per_list_counts, user_impact_stats
from repro.core.overlap import compute_overlap
from repro.core.report import PAPER_VALUES, build_report
from repro.core.reuse import ReuseAnalysis
from repro.natdetect.detector import NatDetectionResult, NatVerdict
from repro.net.asdb import ASDatabase, ASRecord
from repro.net.ipv4 import Prefix, ip_to_int
from repro.ripe.pipeline import PipelineResult, ProbeSummary

WINDOWS = [(0, 9), (20, 29)]

IP_NAT = ip_to_int("1.0.0.10")       # NATed + listed
IP_NAT_CLEAN = ip_to_int("1.0.0.11") # NATed, never listed
IP_DYN = ip_to_int("2.0.0.5")        # dynamic + listed
IP_PLAIN = ip_to_int("3.0.0.7")      # listed, not reused
IP_OUTSIDE = ip_to_int("3.0.0.8")    # listed outside windows only


def make_nat_result():
    verdicts = {
        IP_NAT: NatVerdict(IP_NAT, True, 3, 3, 3, 5),
        IP_NAT_CLEAN: NatVerdict(IP_NAT_CLEAN, True, 2, 2, 2, 5),
        IP_PLAIN: NatVerdict(IP_PLAIN, False, 1, 1, 1, 2),
    }
    return NatDetectionResult(verdicts)


def make_pipeline():
    daily = ProbeSummary(
        probe_id=1,
        addresses=[IP_DYN, IP_DYN + 1],
        first_day=0.0,
        last_day=10.0,
        asns={2},
    )
    static = ProbeSummary(
        probe_id=2,
        addresses=[ip_to_int("9.0.0.1")],
        first_day=0.0,
        last_day=10.0,
        asns={9},
    )
    return PipelineResult(
        all_probes=[daily, static],
        same_as_probes=[daily, static],
        frequent_probes=[daily],
        daily_probes=[daily],
        allocation_knee=8,
        dynamic_prefixes={Prefix(IP_DYN & 0xFFFFFF00, 24)},
    )


def make_listings():
    return ListingStore(
        [
            Listing("alpha", IP_NAT, 0, 4),       # 5 days in window 1
            Listing("alpha", IP_DYN, 2, 3),       # 2 days
            Listing("beta", IP_NAT, 21, 28),      # 8 days in window 2
            Listing("beta", IP_PLAIN, 0, 29),     # spans both windows
            Listing("gamma", IP_OUTSIDE, 12, 15), # outside both windows
        ]
    )


def make_asdb():
    db = ASDatabase()
    db.add(ASRecord(1, "a", prefixes=[Prefix.from_text("1.0.0.0/8")]))
    db.add(ASRecord(2, "b", prefixes=[Prefix.from_text("2.0.0.0/8")]))
    db.add(ASRecord(3, "c", prefixes=[Prefix.from_text("3.0.0.0/8")]))
    return db


@pytest.fixture()
def analysis():
    return ReuseAnalysis(
        make_listings(),
        WINDOWS,
        make_nat_result(),
        make_pipeline(),
        make_asdb(),
        bittorrent_ips={IP_NAT, IP_NAT_CLEAN, IP_PLAIN},
    )


class TestReuseAnalysis:
    def test_blocklisted_set_respects_windows(self, analysis):
        assert IP_OUTSIDE not in analysis.blocklisted_ips
        assert analysis.blocklisted_ips == {IP_NAT, IP_DYN, IP_PLAIN}

    def test_nated_blocklisted(self, analysis):
        assert analysis.nated_blocklisted == {IP_NAT}

    def test_dynamic_blocklisted(self, analysis):
        assert analysis.dynamic_blocklisted == {IP_DYN}

    def test_reused_union(self, analysis):
        assert analysis.reused_ips() == {IP_NAT, IP_DYN}

    def test_is_reused_covers_unlisted_nat(self, analysis):
        assert analysis.is_reused(IP_NAT_CLEAN)
        assert not analysis.is_reused(IP_PLAIN)

    def test_per_list_counts(self, analysis):
        nated = analysis.nated_listings_per_list()
        # gamma's only listing fell outside the windows, so it is not
        # part of the observed store at all.
        assert nated == {"alpha": 1, "beta": 1}
        dynamic = analysis.dynamic_listings_per_list()
        assert dynamic["alpha"] == 1
        assert dynamic.get("beta", 0) == 0

    def test_total_listings(self, analysis):
        assert analysis.total_listings({IP_NAT}) == 2  # alpha + beta

    def test_duration_samples(self, analysis):
        runs = dict(
            zip(
                sorted(analysis.blocklisted_ips),
                [],
            )
        )
        all_runs = analysis.duration_samples()
        assert sorted(all_runs) == [2, 8, 10]  # DYN=2, NAT=8, PLAIN=10
        nat_runs = analysis.duration_samples(analysis.nated_blocklisted)
        assert nat_runs == [8]

    def test_users_behind_samples(self, analysis):
        assert analysis.users_behind_samples() == [3]


class TestImpact:
    def test_per_list_counts_stats(self, analysis):
        counts = per_list_counts(
            analysis, "nated", all_list_ids=["alpha", "beta", "gamma", "delta"]
        )
        assert counts.total_listings == 2
        assert counts.lists_with_any == 2
        assert counts.lists_with_none == 2
        assert counts.fraction_of_lists_affected(4) == 0.5
        assert counts.mean_per_listing_list == 1.0

    def test_per_list_counts_bad_kind(self, analysis):
        with pytest.raises(ValueError):
            per_list_counts(analysis, "weird", all_list_ids=[])

    def test_duration_stats(self, analysis):
        stats = duration_stats(analysis)
        medians = stats.medians()
        assert medians["dynamic"] == 2
        assert medians["nated"] == 8
        assert stats.max_days()["all"] == 10
        removed = stats.removed_within(2)
        assert removed["dynamic"] == 1.0

    def test_user_impact(self, analysis):
        stats = user_impact_stats(analysis)
        assert stats.max_users() == 3
        assert stats.fraction_exactly_two() == 0.0
        assert stats.fraction_below_ten() == 1.0


class TestOverlapAndFunnel:
    def test_overlap_curves(self, analysis):
        curves = compute_overlap(analysis)
        assert curves.ases_with_blocklisted == 3
        assert curves.ases_with_bittorrent == 2  # AS1 (nat) + AS3 (plain)
        assert curves.ases_with_ripe == 1
        assert curves.blocklisted[-1] == pytest.approx(1.0)
        assert curves.bittorrent[-1] == pytest.approx(1.0)
        # Cumulative curves are monotone.
        for series in (curves.blocklisted, curves.bittorrent, curves.ripe):
            assert series == sorted(series)

    def test_coverage_fractions(self, analysis):
        curves = compute_overlap(analysis)
        assert curves.bittorrent_as_coverage() == pytest.approx(2 / 3)
        assert curves.ripe_as_coverage() == pytest.approx(1 / 3)

    def test_funnel(self, analysis):
        funnel = compute_funnel(analysis)
        assert funnel.bittorrent_ips == 3
        assert funnel.nated_ips == 2
        assert funnel.nated_blocklisted == 1
        assert funnel.blocklisted_daily == 1
        assert funnel.monotone()


class TestGreylist:
    def test_entries(self, analysis):
        entries = build_greylist(analysis)
        assert {e.ip for e in entries} == {IP_NAT, IP_DYN}
        kinds = {e.ip: e.reuse_kind for e in entries}
        assert kinds[IP_NAT] == "nat"
        assert kinds[IP_DYN] == "dynamic"

    def test_render(self, analysis):
        text = render_greylist(build_greylist(analysis))
        assert "1.0.0.10 nat 3" in text
        assert text.startswith("#")

    def test_policy(self, analysis):
        assert (
            recommend_action(analysis, IP_NAT, blocklist_category="spam")
            == BlockAction.GREYLIST
        )
        assert (
            recommend_action(analysis, IP_NAT, blocklist_category="ddos")
            == BlockAction.BLOCK
        )
        assert (
            recommend_action(analysis, IP_PLAIN, blocklist_category="spam")
            == BlockAction.BLOCK
        )


class TestReport:
    def test_measured_keys_match_paper_keys(self, analysis):
        report = build_report(
            analysis, all_list_ids=["alpha", "beta", "gamma"]
        )
        measured = report.measured()
        assert set(measured) == set(PAPER_VALUES)

    def test_render_contains_rows(self, analysis):
        report = build_report(analysis, all_list_ids=["alpha", "beta"])
        text = report.render()
        assert "nated_listings" in text
        assert "paper" in text
