"""Tests for the mitigation-policy and user-days extensions."""

import random

import pytest

from repro.core.mitigation import (
    POLICY_BLOCK_ALL,
    POLICY_GREYLIST_REUSED,
    POLICY_IGNORE_LISTS,
    TrafficModel,
    evaluate_policy,
)
from repro.core.userimpact import compute_user_days
from repro.experiments.runner import cached_run


@pytest.fixture(scope="module")
def small_run():
    return cached_run("small")


class TestMitigationPolicies:
    def outcomes(self, small_run):
        truth = small_run.scenario.truth
        analysis = small_run.analysis
        traffic = TrafficModel(legit_attempts_per_user_day=1.0)
        return {
            policy: evaluate_policy(
                policy,
                truth,
                analysis,
                random.Random(77),
                traffic=traffic,
            )
            for policy in (
                POLICY_BLOCK_ALL,
                POLICY_GREYLIST_REUSED,
                POLICY_IGNORE_LISTS,
            )
        }

    def test_unknown_policy_rejected(self, small_run):
        with pytest.raises(ValueError):
            evaluate_policy(
                "allowlist-everyone",
                small_run.scenario.truth,
                small_run.analysis,
                random.Random(1),
            )

    def test_ignore_lists_blocks_nothing(self, small_run):
        outcome = self.outcomes(small_run)[POLICY_IGNORE_LISTS]
        assert outcome.legit_blocked == 0
        assert outcome.abuse_blocked == 0
        assert outcome.abuse_pass_rate() == 1.0

    def test_block_all_blocks_everything(self, small_run):
        outcome = self.outcomes(small_run)[POLICY_BLOCK_ALL]
        assert outcome.abuse_passed == 0
        if outcome.legit_attempts:
            assert outcome.unjust_block_rate() == 1.0

    def test_greylisting_reduces_unjust_blocking(self, small_run):
        outcomes = self.outcomes(small_run)
        block_all = outcomes[POLICY_BLOCK_ALL]
        greylist = outcomes[POLICY_GREYLIST_REUSED]
        # The paper's point: greylisting reused addresses strictly
        # reduces unjust blocking...
        assert greylist.unjust_block_rate() < block_all.unjust_block_rate()
        # ...while stopping the vast majority of abuse.
        assert greylist.abuse_pass_rate() < 0.2

    def test_counters_consistent(self, small_run):
        for outcome in self.outcomes(small_run).values():
            assert outcome.legit_blocked <= outcome.legit_attempts
            assert (
                outcome.abuse_passed + outcome.abuse_blocked
                <= outcome.abuse_attempts
            )

    def test_rates_on_empty_outcome(self):
        from repro.core.mitigation import PolicyOutcome

        empty = PolicyOutcome(POLICY_BLOCK_ALL)
        assert empty.unjust_block_rate() == 0.0
        assert empty.abuse_pass_rate() == 0.0


class TestUserDays:
    def test_report_structure(self, small_run):
        report = compute_user_days(
            small_run.scenario.truth, small_run.analysis
        )
        assert report.impacts
        for impact in report.impacts:
            assert impact.reuse_kind in ("nat", "dynamic")
            assert impact.listed_days >= 1
            assert impact.innocent_users >= 1
            assert impact.unjust_user_days >= impact.innocent_users >= 1

    def test_totals_add_up(self, small_run):
        report = compute_user_days(
            small_run.scenario.truth, small_run.analysis
        )
        assert report.total_user_days() == sum(
            i.unjust_user_days for i in report.impacts
        )
        by_kind = report.by_kind()
        assert sum(by_kind.values()) == report.total_user_days()

    def test_worst_sorted(self, small_run):
        report = compute_user_days(
            small_run.scenario.truth, small_run.analysis
        )
        worst = report.worst(3)
        values = [i.unjust_user_days for i in worst]
        assert values == sorted(values, reverse=True)

    def test_nat_user_days_bound(self, small_run):
        """NAT unjust user-days = innocents x listed days, and the
        detected lower bound never exceeds the true household size."""
        truth = small_run.scenario.truth
        report = compute_user_days(truth, small_run.analysis)
        true_nated = truth.true_nated_ips()
        for impact in report.impacts:
            if impact.reuse_kind != "nat":
                continue
            assert impact.unjust_user_days == (
                impact.innocent_users * impact.listed_days
            )
            assert impact.innocent_users <= true_nated[impact.ip]


class TestMultiVantage:
    def test_multiple_vantage_points_cover_at_least_one(self, small_run):
        from repro.experiments.btsetup import CrawlSetup, run_crawl

        scenario = small_run.scenario
        single = run_crawl(
            scenario, CrawlSetup(duration_hours=4.0, n_vantage_points=1)
        )
        multi = run_crawl(
            scenario, CrawlSetup(duration_hours=4.0, n_vantage_points=3)
        )
        assert len(multi.crawlers) == 3
        assert len(multi.bittorrent_ips()) >= len(single.bittorrent_ips())
        merged = multi.merged_log()
        assert len(merged) >= max(len(c.log) for c in multi.crawlers)
        # Merged log is time-ordered.
        times = [r.time for r in merged]
        assert times == sorted(times)

    def test_zero_vantage_points_rejected(self, small_run):
        from repro.experiments.btsetup import CrawlSetup, run_crawl

        with pytest.raises(ValueError):
            run_crawl(
                small_run.scenario,
                CrawlSetup(duration_hours=1.0, n_vantage_points=0),
            )


class TestValidationHelpers:
    def test_score_sets_basic(self):
        from repro.experiments.validation import score_sets

        score = score_sets({1, 2, 3}, {2, 3, 4})
        assert score.true_positives == 2
        assert score.false_positives == 1
        assert score.false_negatives == 1
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 3)
        assert 0 < score.f1 < 1

    def test_score_empty_detection_is_precise(self):
        from repro.experiments.validation import score_sets

        score = score_sets(set(), {1, 2})
        assert score.precision == 1.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_score_nothing_to_find(self):
        from repro.experiments.validation import score_sets

        score = score_sets(set(), set())
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_as_row_shape(self):
        from repro.experiments.validation import score_sets

        row = score_sets({1}, {1}).as_row()
        assert row == (1, 1, 0, 1.0, 1.0)

    def test_detector_scores_on_small_run(self, small_run):
        from repro.experiments.validation import score_sets

        truth_nated = set(small_run.scenario.truth.true_nated_ips())
        score = score_sets(small_run.nat.nated_ips(), truth_nated)
        assert score.precision == 1.0  # verified rule: no false claims
        assert 0 < score.recall <= 1.0


class TestWindowBreakdown:
    def test_per_window_stats(self, small_run):
        from repro.core.windows import per_window_stats, window_overlap

        stats = per_window_stats(small_run.analysis)
        assert len(stats) == 2
        w1, w2 = stats
        assert w1.days == 39 and w2.days == 44
        total = len(small_run.analysis.blocklisted_ips)
        # Union over windows covers everything observed.
        assert w1.blocklisted + w2.blocklisted >= total
        overlap = window_overlap(small_run.analysis)
        assert 0 <= overlap["reused"] <= overlap["blocklisted"]

    def test_render_window_report(self, small_run):
        from repro.core.windows import render_window_report

        text = render_window_report(small_run.analysis)
        assert "Per collection window" in text
        assert "both windows" in text


class TestDegenerateWorlds:
    def test_run_full_with_no_abuse(self):
        """An abuse-free world: nothing gets listed, the crawl space is
        empty, and every analysis stage must degrade gracefully."""
        from repro.experiments.btsetup import CrawlSetup
        from repro.experiments.runner import RunConfig, run_full
        from repro.internet.abuse import AbuseConfig
        from repro.internet.scenario import ScenarioConfig

        scenario = ScenarioConfig.small(seed=1)
        scenario.abuse = AbuseConfig(
            compromise_rate_bt=0.0,
            compromise_rate_other=0.0,
            compromise_rate_dynamic=0.0,
            compromise_rate_hosting=0.0,
        )
        config = RunConfig(
            scenario=scenario,
            crawl=CrawlSetup(duration_hours=1.0),
        )
        run = run_full(config)
        assert run.analysis.blocklisted_ips == set()
        assert run.analysis.reused_ips() == set()
        measured = run.report.measured()
        assert measured["nated_listings"] == 0
        assert measured["max_days_listed"] == 0
