"""Tests for crawl logs and NAT detection over handcrafted logs."""

import pytest

from repro.bittorrent.crawllog import (
    QUERY_GET_NODES,
    QUERY_PING,
    CrawlLog,
    ReceivedRecord,
    SentRecord,
    read_jsonl,
    write_jsonl,
)
from repro.natdetect import (
    collect_evidence,
    detect_by_node_ids,
    detect_by_ports,
    detect_nated,
)

IP = 0x0A000001


def ping_reply(t, ip, port, node_id):
    return ReceivedRecord(t, QUERY_PING, ip, port, node_id, "aa")


class TestCrawlLogRecords:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            SentRecord(0.0, "announce", IP, 1, "aa")
        with pytest.raises(ValueError):
            ReceivedRecord(0.0, "announce", IP, 1, "id", "aa")

    def test_response_rate(self):
        log = CrawlLog()
        log.append(SentRecord(0.0, QUERY_PING, IP, 1, "01"))
        log.append(SentRecord(1.0, QUERY_PING, IP, 2, "02"))
        log.append(ping_reply(1.5, IP, 1, "n1"))
        assert log.response_rate(QUERY_PING) == 0.5
        assert log.response_rate() == 0.5

    def test_response_rate_empty(self):
        assert CrawlLog().response_rate() == 0.0

    def test_jsonl_roundtrip(self, tmp_path):
        log = CrawlLog()
        log.append(SentRecord(0.5, QUERY_GET_NODES, IP, 6881, "0001"))
        log.append(
            ReceivedRecord(0.9, QUERY_GET_NODES, IP, 6881, "ab" * 20, "0001", "5554")
        )
        log.append(SentRecord(1.0, QUERY_PING, IP, 6881, "0002"))
        path = tmp_path / "crawl.jsonl"
        assert write_jsonl(log, path) == 3
        loaded = read_jsonl(path)
        assert list(loaded) == list(log)

    def test_jsonl_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"dir":"sideways"}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_jsonl_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("\n\n")
        assert len(read_jsonl(path)) == 0


class TestEvidence:
    def test_rounds_split_by_window(self):
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(10.0, IP, 2, "b"))
        log.append(ping_reply(3600.0, IP, 1, "a"))
        evidence = collect_evidence(log, round_window=30.0)
        assert len(evidence[IP].rounds) == 2
        assert evidence[IP].rounds[0].simultaneous_users() == 2
        assert evidence[IP].rounds[1].simultaneous_users() == 1

    def test_duplicate_responses_collapse(self):
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(0.1, IP, 1, "a"))
        evidence = collect_evidence(log)
        assert evidence[IP].rounds[0].simultaneous_users() == 1

    def test_get_nodes_counts_ports_not_rounds(self):
        log = CrawlLog()
        log.append(
            ReceivedRecord(0.0, QUERY_GET_NODES, IP, 5, "x", "aa")
        )
        evidence = collect_evidence(log)
        assert evidence[IP].rounds == []
        assert evidence[IP].ports_seen == {5}
        assert evidence[IP].get_nodes_responses == 1

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            collect_evidence(CrawlLog(), round_window=0)


class TestDetection:
    def test_same_port_two_ids_not_nat(self):
        # One user restarting (new node_id, same port) is not a NAT.
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(1.0, IP, 1, "b"))
        result = detect_nated(log)
        assert IP not in result.nated_ips()

    def test_two_ports_same_id_not_nat(self):
        # Same node_id on two ports within a round: one client that
        # rebound; distinct node_ids are required.
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(1.0, IP, 2, "a"))
        result = detect_nated(log)
        assert IP not in result.nated_ips()

    def test_two_ports_two_ids_same_round_is_nat(self):
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(1.0, IP, 2, "b"))
        result = detect_nated(log)
        assert IP in result.nated_ips()
        assert result.users_behind(IP) == 2

    def test_simultaneity_required(self):
        # Two ports, two ids, but hours apart: the port-change case.
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(7200.0, IP, 2, "b"))
        result = detect_nated(log)
        assert IP not in result.nated_ips()
        # ... but the naive rules both flag it:
        assert IP in detect_by_ports(log).nated_ips()
        assert IP in detect_by_node_ids(log).nated_ips()

    def test_user_bound_is_max_over_rounds(self):
        log = CrawlLog()
        for port, nid in [(1, "a"), (2, "b")]:
            log.append(ping_reply(0.0, IP, port, nid))
        for port, nid in [(1, "a"), (2, "b"), (3, "c")]:
            log.append(ping_reply(7200.0, IP, port, nid))
        result = detect_nated(log)
        assert result.users_behind(IP) == 3

    def test_min_users_validation(self):
        with pytest.raises(ValueError):
            detect_nated(CrawlLog(), min_users=1)

    def test_user_counts_sorted(self):
        log = CrawlLog()
        log.append(ping_reply(0.0, IP, 1, "a"))
        log.append(ping_reply(1.0, IP, 2, "b"))
        other = IP + 1
        for port, nid in [(1, "a"), (2, "b"), (3, "c")]:
            log.append(ping_reply(0.0, other, port, nid))
        result = detect_nated(log)
        assert result.user_counts() == [2, 3]

    def test_unknown_ip_zero_users(self):
        result = detect_nated(CrawlLog())
        assert result.users_behind(123) == 0
