"""Tests for the whole-program flow pass (src/repro/devtools/flow):
symbol table, call-graph resolution, the three FLOW-* rules, the
stale-waiver check, and the CLI/gate plumbing around them.

Each rule gets the seeded fixture the issue demands — an unlocked
write three calls below the public entry (FLOW-LOCK), a ``time.sleep``
behind a reactor timer (FLOW-BLOCK), one-byte cursor drift in a codec
(FLOW-WIRE) — plus the negatives that prove the pass stays silent on
the idioms the real serving plane uses.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import devtools
from repro.cli import main
from repro.devtools.flow import get_program
from repro.devtools.lint import LintModule, ProgramContext

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")


def report_tree(tmp_path, files):
    write_tree(tmp_path, files)
    return devtools.lint_report([tmp_path], tmp_path)


def findings(tmp_path, files, code):
    report = report_tree(tmp_path, files)
    return [v for v in report.violations if v.rule == code]


def make_program(files):
    modules = [
        LintModule(Path(rel), rel, textwrap.dedent(src))
        for rel, src in files.items()
    ]
    return get_program(ProgramContext(modules))


class TestSymtab:
    def test_resolve_dotted_respects_path_boundaries(self):
        program = make_program(
            {
                "service/wire.py": "def encode():\n    return 1\n",
                "service/hardwire.py": "def encode():\n    return 2\n",
            }
        )
        info = program.resolve_dotted("service.wire.encode")
        assert info is not None
        assert info.qualname == "service/wire.py::encode"
        # "wire.encode" must not match hardwire.py by string suffix.
        info = program.resolve_dotted("wire.encode")
        assert info is not None
        assert info.module.relpath == "service/wire.py"

    def test_ambiguous_names_resolve_to_nothing(self):
        program = make_program(
            {
                "service/a.py": "class Foo:\n    pass\n",
                "cluster/b.py": "class Foo:\n    pass\n",
            }
        )
        assert program.unique_class("Foo") is None

    def test_same_module_symbol_shadows_project(self):
        files = {
            "service/local.py": (
                "def helper():\n    return 'local'\n"
            ),
            "cluster/other.py": (
                "def helper():\n    return 'other'\n"
            ),
        }
        program = make_program(files)
        module = program.modules[0]
        assert module.relpath == "service/local.py"
        info = program.resolve_name(module, "helper")
        assert info is not None
        assert info.module.relpath == "service/local.py"

    def test_attr_ctors_recorded(self):
        program = make_program(
            {
                "service/app.py": """
                class Router:
                    def route(self):
                        return 1


                class App:
                    def __init__(self):
                        self.router = Router()
                """,
            }
        )
        app = program.unique_class("App")
        assert app is not None
        assert app.attr_ctors == {"router": "Router"}

    def test_program_cached_on_context(self):
        modules = [
            LintModule(Path("service/x.py"), "service/x.py", "x = 1\n")
        ]
        context = ProgramContext(modules)
        assert get_program(context) is get_program(context)


LOCK_THREE_DEEP = """
import threading


class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        self._step_a()

    def _step_a(self):
        self._step_b()

    def _step_b(self):
        self.hits += 1

    def reset(self):
        with self._lock:
            self.hits = 0
"""


class TestFlowLock:
    def test_unlocked_write_three_calls_deep(self, tmp_path):
        found = findings(
            tmp_path, {"service/eng.py": LOCK_THREE_DEEP}, "FLOW-LOCK"
        )
        assert len(found) == 1
        assert "self.hits" in found[0].message
        assert "record -> _step_a -> _step_b" in found[0].message

    def test_lock_held_in_caller_covers_callee(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/eng.py": """
                import threading


                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.hits = 0

                    def record(self):
                        with self._lock:
                            self._bump()

                    def _bump(self):
                        self.hits += 1
                """,
            },
            "FLOW-LOCK",
        )
        assert found == []

    def test_lock_free_class_is_silent(self, tmp_path):
        # No lock attribute at all (Reactor-style loop-owned state):
        # the class demonstrates no discipline, so none is enforced.
        found = findings(
            tmp_path,
            {
                "service/loop.py": """
                import threading


                class Reactor:
                    def __init__(self):
                        self.pending = 0

                    def tick(self):
                        self.pending += 1
                """,
            },
            "FLOW-LOCK",
        )
        assert found == []

    def test_thread_target_counts_as_entry(self, tmp_path):
        # _worker is private, but handing it to Thread(target=...)
        # makes it run lock-free later — it is an entry point.
        found = findings(
            tmp_path,
            {
                "service/bg.py": """
                import threading


                class Pump:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.moved = 0

                    def start(self):
                        thread = threading.Thread(target=self._worker)
                        thread.start()

                    def _worker(self):
                        self.moved += 1

                    def drain(self):
                        with self._lock:
                            self.moved = 0
                """,
            },
            "FLOW-LOCK",
        )
        assert len(found) == 1
        assert "_worker" in found[0].message

    def test_unguarded_attr_not_flagged(self, tmp_path):
        # self.name is never written under the lock anywhere, so the
        # class claims no discipline for it — only self.hits counts.
        found = findings(
            tmp_path,
            {
                "service/eng.py": """
                import threading


                class Engine:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.hits = 0
                        self.name = ""

                    def rename(self, name):
                        self.name = name

                    def reset(self):
                        with self._lock:
                            self.hits = 0
                """,
            },
            "FLOW-LOCK",
        )
        assert found == []

    def test_waiver_suppresses(self, tmp_path):
        waived = LOCK_THREE_DEEP.replace(
            "self.hits += 1",
            "self.hits += 1  # reprolint: disable=FLOW-LOCK",
        )
        found = findings(
            tmp_path, {"service/eng.py": waived}, "FLOW-LOCK"
        )
        assert found == []


BLOCK_TIMER_SLEEP = """
import time


class Sweeper:
    def __init__(self, reactor):
        self.reactor = reactor

    def start(self):
        self.reactor.call_later(5.0, self._sweep)

    def _sweep(self):
        self._flush()

    def _flush(self):
        time.sleep(0.1)
"""


class TestFlowBlock:
    def test_sleep_behind_timer_flagged(self, tmp_path):
        found = findings(
            tmp_path, {"service/sweep.py": BLOCK_TIMER_SLEEP}, "FLOW-BLOCK"
        )
        assert len(found) == 1
        assert "time.sleep" in found[0].message
        assert "call_later" in found[0].message
        assert "_sweep -> _flush" in found[0].message

    def test_unregistered_sleep_not_flagged(self, tmp_path):
        # The same blocking call with no reactor registration is
        # off-loop work (heartbeat threads, drain helpers).
        found = findings(
            tmp_path,
            {
                "service/drain.py": """
                import time


                class Drainer:
                    def drain(self):
                        time.sleep(0.1)
                """,
            },
            "FLOW-BLOCK",
        )
        assert found == []

    def test_lambda_callback_resolved(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/lam.py": """
                import time


                class App:
                    def __init__(self, reactor):
                        self.reactor = reactor

                    def go(self):
                        self.reactor.call_soon(lambda: time.sleep(1))
                """,
            },
            "FLOW-BLOCK",
        )
        assert len(found) == 1

    def test_partial_callback_resolved(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/part.py": """
                import functools
                import subprocess


                class App:
                    def __init__(self, reactor):
                        self.reactor = reactor

                    def go(self):
                        self.reactor.call_soon(
                            functools.partial(self._spawn, "ls")
                        )

                    def _spawn(self, cmd):
                        subprocess.run(cmd)
                """,
            },
            "FLOW-BLOCK",
        )
        assert len(found) == 1
        assert "subprocess" in found[0].message

    def test_setblocking_false_exempts_connect(self, tmp_path):
        source = """
        class Conn:
            def __init__(self, reactor, sock, addr):
                self._sock = sock
                self._addr = addr
                reactor.call_soon(self._kick)

            def _kick(self):
                self._sock.connect(self._addr)
        """
        found = findings(
            tmp_path, {"service/conn.py": source}, "FLOW-BLOCK"
        )
        assert len(found) == 1
        assert "connect" in found[0].message
        # The module-wide non-blocking setup is the sanctioned idiom.
        exempt = source + (
            "\n"
            "    def setup(self):\n"
            "        self._sock.setblocking(False)\n"
        )
        found = findings(
            tmp_path, {"service/conn.py": exempt}, "FLOW-BLOCK"
        )
        assert found == []

    def test_callback_assignment_is_a_root(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/sel.py": """
                from pathlib import Path


                class Conn:
                    def __init__(self, state):
                        self.state = state

                    def wire(self, conn):
                        conn.callback = self._on_ready

                    def _on_ready(self):
                        return Path("spool").read_text()
                """,
            },
            "FLOW-BLOCK",
        )
        assert len(found) == 1
        assert "read_text" in found[0].message


WIRE_CURSOR_DRIFT = """
import struct

REC = struct.Struct(">IBi")


def decode(payload, pos):
    _need(payload, pos, 9)
    ip, has_day, day = REC.unpack_from(payload, pos)
    pos += 8
    return ip, has_day, day, pos


def _need(payload, pos, count):
    if len(payload) - pos < count:
        raise ValueError("short")
"""


class TestFlowWire:
    def test_one_byte_cursor_drift_flagged(self, tmp_path):
        found = findings(
            tmp_path, {"service/codec.py": WIRE_CURSOR_DRIFT}, "FLOW-WIRE"
        )
        assert len(found) == 1
        assert "8 byte(s)" in found[0].message
        assert "REC.size is 9" in found[0].message

    def test_short_need_guard_flagged(self, tmp_path):
        drifted = WIRE_CURSOR_DRIFT.replace(
            "_need(payload, pos, 9)", "_need(payload, pos, 8)"
        ).replace("pos += 8", "pos += 9")
        found = findings(
            tmp_path, {"service/codec.py": drifted}, "FLOW-WIRE"
        )
        assert len(found) == 1
        assert "_need() guards 8 byte(s)" in found[0].message

    def test_conformant_decoder_clean(self, tmp_path):
        fixed = WIRE_CURSOR_DRIFT.replace("pos += 8", "pos += 9")
        found = findings(
            tmp_path, {"service/codec.py": fixed}, "FLOW-WIRE"
        )
        assert found == []

    def test_pack_arity_mismatch_flagged(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/codec.py": """
                import struct

                HDR = struct.Struct(">BBII")


                def encode(ftype, payload):
                    return HDR.pack(1, ftype, len(payload))
                """,
            },
            "FLOW-WIRE",
        )
        assert len(found) == 1
        assert "3 value(s)" in found[0].message
        assert "4 field(s)" in found[0].message

    def test_unpack_destructure_mismatch_flagged(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/codec.py": """
                import struct

                HDR = struct.Struct(">BBII")


                def decode(blob):
                    version, ftype, seq = HDR.unpack(blob)
                    return version, ftype, seq
                """,
            },
            "FLOW-WIRE",
        )
        assert len(found) == 1
        assert "destructured into 3 name(s)" in found[0].message

    def test_v6_twin_drift_flagged(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/codec.py": """
                import struct

                REC = struct.Struct(">IBi")
                REC6 = struct.Struct(">16sBBi")
                """,
            },
            "FLOW-WIRE",
        )
        assert len(found) == 1
        assert "drifted" in found[0].message

    def test_v6_twin_conformant_clean(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/codec.py": """
                import struct

                REC = struct.Struct(">IBi")
                REC6 = struct.Struct(">16sBi")
                """,
            },
            "FLOW-WIRE",
        )
        assert found == []

    def test_encoded_ft_without_decoder_flagged(self, tmp_path):
        files = {
            "service/enc.py": """
            FT_PING = 7


            def encode_frame(ftype, payload):
                return bytes([ftype]) + payload


            def send(payload):
                return encode_frame(FT_PING, payload)
            """,
        }
        found = findings(tmp_path, dict(files), "FLOW-WIRE")
        assert len(found) == 1
        assert "FT_PING" in found[0].message
        # A decoder branch in another serving module satisfies it.
        files["cluster/dec.py"] = """
        from ..service.enc import FT_PING


        def dispatch(ftype, payload):
            if ftype == FT_PING:
                return payload
            return None
        """
        found = findings(tmp_path, files, "FLOW-WIRE")
        assert found == []

    def test_invalid_format_string_flagged(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/codec.py": (
                    "import struct\n\nBAD = struct.Struct('>Bq!')\n"
                ),
            },
            "FLOW-WIRE",
        )
        assert len(found) == 1
        assert "does not compile" in found[0].message

    def test_inline_struct_pack_checked(self, tmp_path):
        found = findings(
            tmp_path,
            {
                "service/codec.py": """
                import struct


                def encode(a, b):
                    return struct.pack(">BB", a, b, 0)
                """,
            },
            "FLOW-WIRE",
        )
        assert len(found) == 1

    def test_repo_codec_is_conformant(self):
        # The real wire modules pass their own conformance bar.
        report = devtools.lint_report(
            [REPO_ROOT / "src" / "repro" / "service"], REPO_ROOT
        )
        assert [
            v for v in report.violations if v.rule == "FLOW-WIRE"
        ] == []


class TestStaleWaivers:
    def test_unknown_code_reported(self, tmp_path):
        report = report_tree(
            tmp_path,
            {
                "sim/odd.py": (
                    "x = 1  # reprolint: disable=NOPE\n"
                ),
            },
        )
        assert len(report.waiver_issues) == 1
        issue = report.waiver_issues[0]
        assert issue.code == "NOPE"
        assert issue.reason == "unknown rule code"

    def test_unused_waiver_reported(self, tmp_path):
        report = report_tree(
            tmp_path,
            {
                "sim/clean.py": (
                    "x = 1  # reprolint: disable=DET\n"
                ),
            },
        )
        assert len(report.waiver_issues) == 1
        assert report.waiver_issues[0].code == "DET"
        assert report.waiver_issues[0].reason == "matched no violation"

    def test_used_waiver_not_reported(self, tmp_path):
        report = report_tree(
            tmp_path,
            {
                "sim/waived.py": """
                import time


                def tick():
                    return time.time()  # reprolint: disable=DET
                """,
            },
        )
        assert report.waiver_issues == []
        assert report.violations == []

    def test_file_waiver_tracked(self, tmp_path):
        report = report_tree(
            tmp_path,
            {
                "sim/noop.py": (
                    "# reprolint: disable-file=DET\nx = 1\n"
                ),
            },
        )
        assert len(report.waiver_issues) == 1
        assert report.waiver_issues[0].reason == "matched no violation"

    def test_flow_waiver_not_stale_when_flow_skipped(self, tmp_path):
        # Module-rules-only runs (repro lint --no-flow, lint_gate
        # --changed) must not flag FLOW waivers the skipped pass
        # would have used.
        waived = LOCK_THREE_DEEP.replace(
            "self.hits += 1",
            "self.hits += 1  # reprolint: disable=FLOW-LOCK",
        )
        write_tree(tmp_path, {"service/eng.py": waived})
        module_rules = [
            r for r in devtools.all_rules() if r.scope == "module"
        ]
        report = devtools.lint_report(
            [tmp_path], tmp_path, rules=module_rules
        )
        assert report.waiver_issues == []

    def test_docstring_prose_is_not_a_waiver(self, tmp_path):
        report = report_tree(
            tmp_path,
            {
                "sim/doc.py": (
                    '"""Explains the syntax:\n\n'
                    "    # reprolint: disable=DET\n"
                    '"""\nx = 1\n'
                ),
            },
        )
        assert report.waiver_issues == []

    def test_timings_populated(self, tmp_path):
        report = report_tree(tmp_path, {"sim/x.py": "x = 1\n"})
        assert set(report.timings) == {
            "parse",
            "module_rules",
            "flow",
            "total",
        }
        assert report.timings["total"] >= 0


class TestCliFlow:
    def test_explain_prints_rule_card(self, capsys):
        assert main(["lint", "--explain", "FLOW-BLOCK"]) == 0
        out = capsys.readouterr().out
        assert "scope: program" in out
        assert "example finding:" in out
        assert "disable=FLOW-BLOCK" in out

    def test_explain_unknown_rule_fails(self, capsys):
        assert main(["lint", "--explain", "NOPE"]) != 0
        assert "no such rule" in capsys.readouterr().err

    def test_no_flow_skips_program_rules(self, tmp_path, capsys):
        write_tree(tmp_path, {"service/eng.py": LOCK_THREE_DEEP})
        argv = ["lint", "--root", str(tmp_path), str(tmp_path)]
        assert main(argv) == 1
        assert "FLOW-LOCK" in capsys.readouterr().out
        assert main(argv + ["--no-flow"]) == 0

    def test_strict_waivers_fails_on_stale(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            {"sim/clean.py": "x = 1  # reprolint: disable=DET\n"},
        )
        argv = ["lint", "--root", str(tmp_path), str(tmp_path)]
        # Advisory by default: warn on stderr, exit clean.
        assert main(argv) == 0
        assert "stale waiver" in capsys.readouterr().err
        assert main(argv + ["--strict-waivers"]) == 1


class TestLintGateFlow:
    GATE = REPO_ROOT / "scripts" / "lint_gate.py"

    def _run(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, str(self.GATE), *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
        )

    def _empty_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        devtools.save_baseline(baseline, [])
        return baseline

    def test_flow_violation_fails_gate(self, tmp_path):
        write_tree(tmp_path, {"service/eng.py": LOCK_THREE_DEEP})
        result = self._run(
            "--baseline",
            str(self._empty_baseline(tmp_path)),
            "--root",
            str(tmp_path),
            str(tmp_path / "service"),
        )
        assert result.returncode == 1
        assert "FLOW-LOCK" in result.stdout

    def test_stale_waiver_fails_gate(self, tmp_path):
        write_tree(
            tmp_path,
            {"sim/clean.py": "x = 1  # reprolint: disable=DET\n"},
        )
        result = self._run(
            "--baseline",
            str(self._empty_baseline(tmp_path)),
            "--root",
            str(tmp_path),
            str(tmp_path),
        )
        assert result.returncode == 1
        assert "stale waiver" in result.stderr

    def test_budget_overrun_fails(self, tmp_path):
        write_tree(tmp_path, {"sim/x.py": "x = 1\n"})
        result = self._run(
            "--baseline",
            str(self._empty_baseline(tmp_path)),
            "--root",
            str(tmp_path),
            "--budget",
            "0",
            str(tmp_path),
        )
        assert result.returncode == 1
        assert "over the" in result.stderr

    def test_timings_line_printed(self, tmp_path):
        write_tree(tmp_path, {"sim/x.py": "x = 1\n"})
        result = self._run(
            "--baseline",
            str(self._empty_baseline(tmp_path)),
            "--root",
            str(tmp_path),
            str(tmp_path),
        )
        assert result.returncode == 0
        assert "lint timings:" in result.stdout
        assert "flow=" in result.stdout

    def _git(self, cwd, *argv):
        subprocess.run(
            ["git", *argv], cwd=cwd, check=True, capture_output=True
        )

    def test_changed_lints_only_git_modified(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        baseline = self._empty_baseline(tmp_path)
        # Nothing under src/repro yet: the fast path is a no-op.
        result = self._run(
            "--changed",
            "--baseline",
            str(baseline),
            "--root",
            str(tmp_path),
        )
        assert result.returncode == 0
        assert "no changed files" in result.stdout
        # An uncommitted bad file under src/repro fails the fast path.
        write_tree(
            tmp_path,
            {
                "src/repro/sim/bad.py": (
                    "import time\n\ndef t():\n    return time.time()\n"
                ),
            },
        )
        result = self._run(
            "--changed",
            "--baseline",
            str(baseline),
            "--root",
            str(tmp_path),
        )
        assert result.returncode == 1
        assert "DET" in result.stdout

    def test_changed_rejects_explicit_paths(self, tmp_path):
        result = self._run("--changed", str(tmp_path))
        assert result.returncode == 2
        assert "exclusive" in result.stderr


class TestRepoFlowClean:
    def test_full_repo_report_is_clean(self):
        report = devtools.lint_report(
            [REPO_ROOT / "src" / "repro"], REPO_ROOT
        )
        assert report.violations == []
        assert report.waiver_issues == []

    def test_committed_baseline_is_empty(self):
        doc = json.loads(
            (REPO_ROOT / "LINT_baseline.json").read_text()
        )
        assert doc["violations"] == []
