"""Tests for reprolint (src/repro/devtools): rules, waivers, baseline,
CLI, and the acceptance gate itself.

Fixtures are tiny synthetic trees under ``tmp_path`` — rule scoping is
path-based (``sim/`` for DET, ``service/``/``cluster/``/``stream/`` for
WIRE/EXC and the FLOW-* program pass), so each fixture writes its bad
file under the directory the rule watches. The flow rules themselves
are exercised in depth in ``test_devtools_flow.py``; here they appear
only where the framework plumbing (registry, CLI, gate) touches them.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import devtools
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_tree(tmp_path, relpath, source, codes=None):
    """Write ``source`` at ``tmp_path/relpath`` and lint the tree."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    found = devtools.lint_paths([tmp_path], tmp_path)
    if codes is None:
        return found
    return [v for v in found if v.rule in codes]


class TestRegistry:
    def test_all_issue_rules_registered(self):
        codes = {r.code for r in devtools.all_rules()}
        assert {
            "DET",
            "WIRE",
            "RES",
            "EXC",
            "FLOW-LOCK",
            "FLOW-BLOCK",
            "FLOW-WIRE",
        } <= codes
        # The old single-function CONC heuristic was replaced by the
        # interprocedural FLOW-LOCK pass in PR 10.
        assert "CONC" not in codes

    def test_severities(self):
        by_code = {r.code: r.severity for r in devtools.all_rules()}
        assert by_code["DET"] == "error"
        assert by_code["WIRE"] == "error"
        assert by_code["RES"] == "warning"
        assert by_code["EXC"] == "warning"
        assert by_code["FLOW-LOCK"] == "error"
        assert by_code["FLOW-BLOCK"] == "error"
        assert by_code["FLOW-WIRE"] == "error"

    def test_scopes(self):
        by_code = {r.code: r.scope for r in devtools.all_rules()}
        assert by_code["DET"] == "module"
        assert by_code["FLOW-LOCK"] == "program"
        assert by_code["FLOW-BLOCK"] == "program"
        assert by_code["FLOW-WIRE"] == "program"

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError):
            devtools.get_rule("NOPE")

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            devtools.rule("DET", severity="error", summary="dup")(
                lambda module: []
            )


class TestDetRule:
    def test_wall_clock_flagged_in_sim(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/bad.py",
            """
            import time

            def tick():
                return time.time()
            """,
            codes={"DET"},
        )
        assert len(found) == 1
        assert "time.time" in found[0].message

    def test_import_alias_resolved(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "experiments/bad.py",
            """
            import time as clock

            def tick():
                return clock.monotonic()
            """,
            codes={"DET"},
        )
        assert len(found) == 1
        assert "time.monotonic" in found[0].message

    def test_module_level_random_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "bittorrent/bad.py",
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            codes={"DET"},
        )
        assert len(found) == 1

    def test_seeded_random_instance_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/good.py",
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            codes={"DET"},
        )
        assert found == []

    def test_out_of_scope_dir_not_flagged(self, tmp_path):
        # The same wall-clock call outside the determinism dirs is fine.
        found = lint_tree(
            tmp_path,
            "tools/fine.py",
            """
            import time

            def tick():
                return time.time()
            """,
            codes={"DET"},
        )
        assert found == []


class TestWireRule:
    def test_naked_recv_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/bad.py",
            """
            def pump(sock):
                return sock.recv()
            """,
            codes={"WIRE"},
        )
        assert len(found) == 1
        assert "recv" in found[0].message

    def test_bounded_recv_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/good.py",
            """
            def pump(sock):
                return sock.recv(4096)
            """,
            codes={"WIRE"},
        )
        assert found == []

    def test_non_socket_recv_not_flagged(self, tmp_path):
        # multiprocessing.Connection.recv() takes no arguments; only
        # receivers whose name says "sock" are held to the byte-limit bar.
        found = lint_tree(
            tmp_path,
            "cluster/pipes.py",
            """
            def pump(parent_pipe):
                return parent_pipe.recv()
            """,
            codes={"WIRE"},
        )
        assert found == []

    def test_unbounded_read_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "stream/bad.py",
            """
            def slurp(handle):
                return handle.read()
            """,
            codes={"WIRE"},
        )
        assert len(found) == 1

    def test_json_loads_without_bound_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/bad2.py",
            """
            import json

            def decode(payload):
                return json.loads(payload)
            """,
            codes={"WIRE"},
        )
        assert len(found) == 1

    def test_json_loads_with_len_check_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/good2.py",
            """
            import json

            def decode(payload):
                if len(payload) > 1024:
                    raise ValueError("too big")
                return json.loads(payload)
            """,
            codes={"WIRE"},
        )
        assert found == []

    def test_struct_unpack_guarded_by_handler_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/good3.py",
            """
            import struct

            def parse(blob):
                try:
                    return struct.unpack(">I", blob)
                except struct.error:
                    return None
            """,
            codes={"WIRE"},
        )
        assert found == []

    def test_struct_unpack_unguarded_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/bad3.py",
            """
            import struct

            def parse(blob):
                return struct.unpack(">I", blob)
            """,
            codes={"WIRE"},
        )
        assert len(found) == 1

    def test_iter_unpack_unguarded_flagged(self, tmp_path):
        # The binary batch decoders walk network bytes record-by-record
        # with Struct.iter_unpack; an unguarded walk is the same torn-
        # input crash as a bare unpack.
        found = lint_tree(
            tmp_path,
            "service/bad4.py",
            """
            import struct

            REC = struct.Struct(">IBi")

            def parse(blob):
                return list(REC.iter_unpack(blob))
            """,
            codes={"WIRE"},
        )
        assert len(found) == 1
        assert "unpack" in found[0].message

    def test_iter_unpack_with_len_check_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/good4.py",
            """
            import struct

            REC = struct.Struct(">IBi")

            def parse(blob):
                if len(blob) % REC.size != 0:
                    raise ValueError("short record")
                return list(REC.iter_unpack(blob))
            """,
            codes={"WIRE"},
        )
        assert found == []

    def test_out_of_scope_dir_not_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "analysis/fine.py",
            """
            import json

            def decode(payload):
                return json.loads(payload)
            """,
            codes={"WIRE"},
        )
        assert found == []


# The canonical FLOW-LOCK positive: one guarded write establishes the
# discipline, one lock-free write (reachable from a public entry)
# breaks it. Used both here (gate injection) and by the CLI tests.
FLOW_LOCK_BAD = """
import threading


class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        self.hits += 1

    def reset(self):
        with self._lock:
            self.hits = 0
"""


class TestResRule:
    def test_leaked_open_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "anywhere/bad.py",
            """
            def load(path):
                handle = open(path)
                return handle.name
            """,
            codes={"RES"},
        )
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_with_block_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "anywhere/good.py",
            """
            def load(path):
                with open(path) as handle:
                    return handle.name
            """,
            codes={"RES"},
        )
        assert found == []

    def test_self_owned_and_returned_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "anywhere/owned.py",
            """
            import socket


            class Server:
                def __init__(self):
                    self._sock = socket.socket()


            def opener(path):
                return open(path)
            """,
            codes={"RES"},
        )
        assert found == []

    def test_try_finally_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "anywhere/finally_.py",
            """
            def load(path):
                handle = open(path)
                try:
                    return handle.read(100)
                finally:
                    handle.close()
            """,
            codes={"RES"},
        )
        assert found == []


class TestExcRule:
    def test_silent_pass_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/bad.py",
            """
            def run(step):
                try:
                    step()
                except Exception:
                    pass
            """,
            codes={"EXC"},
        )
        assert len(found) == 1

    def test_counted_handler_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/good.py",
            """
            def run(step, stats):
                try:
                    step()
                except Exception:
                    stats["errors"] += 1
            """,
            codes={"EXC"},
        )
        assert found == []

    def test_narrow_except_clean(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/narrow.py",
            """
            def run(step):
                try:
                    step()
                except KeyError:
                    pass
            """,
            codes={"EXC"},
        )
        assert found == []

    def test_out_of_scope_dir_not_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "analysis/fine.py",
            """
            def run(step):
                try:
                    step()
                except Exception:
                    pass
            """,
            codes={"EXC"},
        )
        assert found == []


class TestWaivers:
    def test_same_line_waiver(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/waived.py",
            """
            import time

            def tick():
                return time.time()  # reprolint: disable=DET
            """,
            codes={"DET"},
        )
        assert found == []

    def test_comment_line_above_waiver(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/waived2.py",
            """
            import time

            def tick():
                # This adapter is the wall-clock boundary by design.
                # reprolint: disable=DET
                return time.time()
            """,
            codes={"DET"},
        )
        assert found == []

    def test_file_level_waiver(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/waived3.py",
            """
            # reprolint: disable-file=DET
            import time

            def tick():
                return time.time()

            def tock():
                return time.monotonic()
            """,
            codes={"DET"},
        )
        assert found == []

    def test_wrong_code_does_not_waive(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/not_waived.py",
            """
            import time

            def tick():
                return time.time()  # reprolint: disable=WIRE
            """,
            codes={"DET"},
        )
        assert len(found) == 1


class TestFrameworkEdges:
    def test_syntax_error_becomes_parse_violation(self, tmp_path):
        found = lint_tree(tmp_path, "sim/broken.py", "def oops(:\n")
        assert [v.rule for v in found] == ["PARSE"]
        assert found[0].severity == "error"

    def test_fingerprint_survives_line_drift(self, tmp_path):
        src = "import time\n\ndef tick():\n    return time.time()\n"
        before = lint_tree(tmp_path, "sim/drift.py", src, codes={"DET"})
        shifted = "\n\n\n" + src
        (tmp_path / "sim" / "drift.py").write_text(shifted)
        after = devtools.lint_paths([tmp_path], tmp_path)
        after = [v for v in after if v.rule == "DET"]
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_render_json_round_trips(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/bad.py",
            "import time\n\ndef t():\n    return time.time()\n",
        )
        doc = json.loads(devtools.render_json(found))
        assert doc["count"] == len(found) == 1
        assert doc["violations"][0]["rule"] == "DET"
        assert doc["violations"][0]["fingerprint"]


class TestEngineEdgeCases:
    """Syntactic shapes that have historically slipped past naive AST
    walks: decorators, closures, ``async def`` bodies, multi-target
    assignments."""

    def test_decorated_methods_still_scanned(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/deco.py",
            """
            import functools
            import time


            def logged(fn):
                @functools.wraps(fn)
                def inner(*a, **k):
                    return fn(*a, **k)
                return inner


            class Clock:
                @property
                def now(self):
                    return time.time()

                @logged
                def tick(self):
                    return time.time()
            """,
            codes={"DET"},
        )
        # Both the @property getter and the custom-decorated method.
        assert len(found) == 2

    def test_nested_function_body_scanned(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "sim/nested.py",
            """
            import time


            def outer():
                def inner():
                    return time.time()
                return inner
            """,
            codes={"DET"},
        )
        assert len(found) == 1

    def test_async_def_body_scanned(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/asyncpump.py",
            """
            async def pump(sock):
                return sock.recv()
            """,
            codes={"WIRE"},
        )
        assert len(found) == 1

    def test_multi_target_assign_leak_flagged(self, tmp_path):
        found = lint_tree(
            tmp_path,
            "service/multi.py",
            """
            def load(path):
                handle = backup = open(path)
                return handle.name, backup
            """,
            codes={"RES"},
        )
        assert len(found) == 1

    def test_multi_target_self_write_flagged_once(self, tmp_path):
        # ``self.a = self.b = 1`` is one write site: one finding, not
        # one per target.
        found = lint_tree(
            tmp_path,
            "service/multilock.py",
            """
            import threading


            class Pair:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.a = 0
                    self.b = 0

                def bump(self):
                    self.a = self.b = 1

                def clear(self):
                    with self._lock:
                        self.a = 0
                        self.b = 0
            """,
            codes={"FLOW-LOCK"},
        )
        assert len(found) == 1
        assert "Pair.bump" in found[0].message


class TestBaseline:
    def _one_violation(self, tmp_path):
        return lint_tree(
            tmp_path,
            "sim/bad.py",
            "import time\n\ndef t():\n    return time.time()\n",
        )

    def test_save_load_compare(self, tmp_path):
        found = self._one_violation(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        devtools.save_baseline(baseline_file, found)
        accepted = devtools.load_baseline(baseline_file)
        assert devtools.compare(found, accepted) == []
        assert devtools.stale_entries(found, accepted) == 0

    def test_new_violation_fails_gate(self, tmp_path):
        found = self._one_violation(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        devtools.save_baseline(baseline_file, [])
        accepted = devtools.load_baseline(baseline_file)
        assert devtools.compare(found, accepted) == found

    def test_fixed_violation_goes_stale_not_fatal(self, tmp_path):
        found = self._one_violation(tmp_path)
        baseline_file = tmp_path / "baseline.json"
        devtools.save_baseline(baseline_file, found)
        accepted = devtools.load_baseline(baseline_file)
        assert devtools.compare([], accepted) == []
        assert devtools.stale_entries([], accepted) == 1

    def test_multiset_coverage(self, tmp_path):
        # The same source line twice in one file = two fingerprint-equal
        # findings; one baseline entry covers exactly one of them.
        found = lint_tree(
            tmp_path,
            "sim/twice.py",
            """
            import time

            def a():
                return time.time()

            def b():
                return time.time()
            """,
            codes={"DET"},
        )
        assert len(found) == 2
        assert found[0].fingerprint == found[1].fingerprint
        baseline_file = tmp_path / "baseline.json"
        devtools.save_baseline(baseline_file, found[:1])
        accepted = devtools.load_baseline(baseline_file)
        assert len(devtools.compare(found, accepted)) == 1

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(devtools.BaselineError, match="not found"):
            devtools.load_baseline(tmp_path / "absent.json")

    def test_bad_version_raises(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text('{"version": 99, "violations": []}')
        with pytest.raises(devtools.BaselineError, match="version"):
            devtools.load_baseline(target)


class TestCli:
    def test_rules_table(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DET",
            "WIRE",
            "RES",
            "EXC",
            "FLOW-LOCK",
            "FLOW-BLOCK",
            "FLOW-WIRE",
        ):
            assert code in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "ok.py").write_text("x = 1\n")
        assert (
            main(["lint", "--root", str(tmp_path), str(tmp_path)]) == 0
        )
        assert "lint: clean" in capsys.readouterr().out

    def test_violating_tree_exits_one(self, tmp_path, capsys):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "bad.py").write_text(
            "import time\n\ndef t():\n    return time.time()\n"
        )
        assert (
            main(["lint", "--root", str(tmp_path), str(tmp_path)]) == 1
        )
        assert "DET" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "bad.py").write_text(
            "import time\n\ndef t():\n    return time.time()\n"
        )
        assert (
            main(
                ["lint", "--json", "--root", str(tmp_path), str(tmp_path)]
            )
            == 1
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1

    def test_update_then_gate_roundtrip(self, tmp_path, capsys):
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "bad.py").write_text(
            "import time\n\ndef t():\n    return time.time()\n"
        )
        baseline = tmp_path / "LINT_baseline.json"
        argv = ["lint", "--root", str(tmp_path), str(tmp_path)]
        assert main(argv + ["--update-baseline"]) == 0
        assert baseline.exists()
        # The accepted finding no longer fails the gate...
        assert main(argv + ["--baseline"]) == 0
        # ...but a second, new finding does.
        (tmp_path / "sim" / "worse.py").write_text(
            "import os\n\ndef t():\n    return os.urandom(4)\n"
        )
        assert main(argv + ["--baseline"]) == 1


class TestRepoGate:
    """The acceptance bar: the repo itself passes, injections fail."""

    def test_repo_is_gate_clean(self, capsys):
        assert main(["lint", "--baseline"]) == 0
        assert "0 new violation(s)" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "relpath, source, rule_code",
        [
            (
                "sim/injected_det.py",
                "import time\n\ndef t():\n    return time.time()\n",
                "DET",
            ),
            (
                "service/injected_wire.py",
                "def pump(sock):\n    return sock.recv()\n",
                "WIRE",
            ),
            ("service/injected_flowlock.py", FLOW_LOCK_BAD, "FLOW-LOCK"),
        ],
    )
    def test_injected_violation_fails_gate(
        self, tmp_path, capsys, relpath, source, rule_code
    ):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(source))
        # Lint the injected tree against the repo's committed baseline —
        # exactly what the gate would see had the file landed in-tree.
        code = main(
            [
                "lint",
                "--baseline",
                "--root",
                str(tmp_path),
                "--baseline-file",
                str(REPO_ROOT / "LINT_baseline.json"),
                str(tmp_path),
            ]
        )
        assert code == 1
        assert rule_code in capsys.readouterr().out


class TestLintGateScript:
    """scripts/lint_gate.py is what scripts/check.sh runs; under
    ``set -e`` its exit code is the gate."""

    GATE = REPO_ROOT / "scripts" / "lint_gate.py"

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.GATE), *argv],
            capture_output=True,
            text=True,
        )

    def test_repo_passes(self):
        result = self._run()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no new lint violations" in result.stdout

    def test_injected_violation_fails(self, tmp_path):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "import time\n\ndef t():\n    return time.time()\n"
        )
        result = self._run("--root", str(tmp_path), str(tmp_path))
        assert result.returncode == 1
        assert "FAIL" in result.stdout

    def test_update_writes_baseline(self, tmp_path):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(
            "import time\n\ndef t():\n    return time.time()\n"
        )
        baseline = tmp_path / "baseline.json"
        update = self._run(
            "--update",
            "--baseline",
            str(baseline),
            "--root",
            str(tmp_path),
            str(tmp_path),
        )
        assert update.returncode == 0
        assert json.loads(baseline.read_text())["violations"]
        gate = self._run(
            "--baseline",
            str(baseline),
            "--root",
            str(tmp_path),
            str(tmp_path),
        )
        assert gate.returncode == 0
