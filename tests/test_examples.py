"""Smoke tests: every example script must run cleanly end-to-end."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _example_env() -> dict:
    """Subprocess environment with an *absolute* src/ on PYTHONPATH.

    The scripts run with ``cwd=tmp_path``, so a relative
    ``PYTHONPATH=src`` inherited from the pytest invocation would no
    longer resolve to the repository sources.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [str(SRC_DIR)] + [
        p for p in existing.split(os.pathsep) if p and p != "src"
    ]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 4  # quickstart + >=3 scenario examples


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,  # scripts write artefacts to cwd
        capture_output=True,
        text=True,
        timeout=240,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_writes_greylist(tmp_path):
    subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=240,
        check=True,
        env=_example_env(),
    )
    greylist = tmp_path / "greylist.txt"
    assert greylist.exists()
    assert greylist.read_text().startswith("#")


def test_crawl_campaign_writes_log(tmp_path):
    subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "nat_crawl_campaign.py")],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=240,
        check=True,
        env=_example_env(),
    )
    log = tmp_path / "crawl_log.jsonl"
    assert log.exists()
    from repro.bittorrent.crawllog import read_jsonl

    assert len(read_jsonl(log)) > 100
