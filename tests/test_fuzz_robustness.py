"""Fuzz-style robustness tests.

Anything that parses wire bytes or feed text must fail *cleanly* on
arbitrary input: a typed error or a valid parse, never an unhandled
exception. A DHT node and a feed collector both live on hostile input.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.bencode import BencodeError, bdecode
from repro.bittorrent.krpc import KrpcError, decode_message
from repro.blocklists.formats import FeedFormatError, parse_feed
from repro.ipv6.addr6 import ip6_to_int
from repro.net.ipv4 import ip_to_int, parse_ip_or_prefix


class TestWireFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=120))
    def test_bdecode_never_crashes(self, blob):
        try:
            bdecode(blob)
        except BencodeError:
            pass

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=120))
    def test_decode_message_never_crashes(self, blob):
        try:
            decode_message(blob)
        except KrpcError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=80))
    def test_feed_parsers_never_crash(self, text):
        for fmt in ("plain", "cidr", "csv"):
            try:
                parse_feed(fmt, text)
            except FeedFormatError:
                pass

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=40))
    def test_ip_parsers_never_crash(self, text):
        for parser in (ip_to_int, parse_ip_or_prefix, ip6_to_int):
            try:
                parser(text)
            except ValueError:
                pass


class TestPeerUnderHostileTraffic:
    def test_peer_survives_garbage_storm(self):
        from repro.bittorrent.peer import SimulatedPeer
        from repro.net.ipv4 import ip_to_int as ip
        from repro.sim.events import Scheduler
        from repro.sim.nat import HostStack
        from repro.sim.rng import RngHub
        from repro.sim.udp import UdpFabric

        hub = RngHub(13)
        sched = Scheduler()
        fabric = UdpFabric(sched, hub, loss_rate=0.0)
        rng = hub.stream("t")
        stack = HostStack(fabric, ip("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        attacker = HostStack(fabric, ip("10.9.9.9"), rng).open_socket()
        blob_rng = random.Random(5)
        for _ in range(200):
            size = blob_rng.randint(0, 60)
            blob = bytes(blob_rng.getrandbits(8) for _ in range(size))
            attacker.send(peer.endpoint, blob)
        sched.run()
        # Peer still answers a well-formed query afterwards.
        from repro.bittorrent.krpc import PingQuery, PingResponse, encode_message

        got = []
        attacker.on_receive(
            lambda d: got.append(d)
        )
        attacker.send(
            peer.endpoint,
            encode_message(PingQuery(b"\x00\x01", bytes(20))),
        )
        sched.run()
        replies = [
            d for d in got
            if isinstance(_try_decode(d.payload), PingResponse)
        ]
        assert len(replies) == 1


def _try_decode(blob):
    try:
        return decode_message(blob)
    except KrpcError:
        return None


class TestCrawlerUnderHostileTraffic:
    def test_unsolicited_responses_ignored(self):
        """Forged responses with unknown transaction ids must not
        pollute the crawl log (they would fabricate NAT evidence)."""
        from repro.bittorrent.crawler import CrawlerConfig, DhtCrawler
        from repro.bittorrent.krpc import PingResponse, encode_message
        from repro.net.ipv4 import ip_to_int as ip
        from repro.sim.clock import HOUR
        from repro.sim.events import Scheduler
        from repro.sim.nat import HostStack
        from repro.sim.rng import RngHub
        from repro.sim.udp import UdpFabric

        hub = RngHub(14)
        sched = Scheduler()
        fabric = UdpFabric(sched, hub, loss_rate=0.0)
        rng = hub.stream("t")
        crawler_sock = HostStack(fabric, ip("10.0.0.1"), rng).open_socket()
        crawler = DhtCrawler(
            sched, crawler_sock, rng, CrawlerConfig(duration=1 * HOUR)
        )
        attacker = HostStack(fabric, ip("66.6.6.6"), rng)
        for port_index in range(5):
            sock = attacker.open_socket()
            forged = PingResponse(
                b"\xff\xff", bytes([port_index]) * 20, None
            )
            sock.send(crawler_sock.endpoint, encode_message(forged))
        sched.run_until(10.0)
        assert crawler.stats.ping_responses == 0
        assert len(list(crawler.log.received())) == 0

    def test_malformed_datagrams_counted(self):
        from repro.bittorrent.crawler import CrawlerConfig, DhtCrawler
        from repro.net.ipv4 import ip_to_int as ip
        from repro.sim.clock import HOUR
        from repro.sim.events import Scheduler
        from repro.sim.nat import HostStack
        from repro.sim.rng import RngHub
        from repro.sim.udp import UdpFabric

        hub = RngHub(15)
        sched = Scheduler()
        fabric = UdpFabric(sched, hub, loss_rate=0.0)
        rng = hub.stream("t")
        crawler_sock = HostStack(fabric, ip("10.0.0.1"), rng).open_socket()
        crawler = DhtCrawler(
            sched, crawler_sock, rng, CrawlerConfig(duration=1 * HOUR)
        )
        attacker = HostStack(fabric, ip("66.6.6.7"), rng).open_socket()
        attacker.send(crawler_sock.endpoint, b"\x00\x01garbage")
        sched.run_until(10.0)
        assert crawler.stats.malformed == 1
