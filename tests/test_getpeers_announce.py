"""Tests for get_peers/announce_peer and the token machinery."""

import pytest

from repro.bittorrent.krpc import (
    AnnouncePeerQuery,
    ErrorMessage,
    GetPeersQuery,
    GetPeersResponse,
    KrpcError,
    PeerEndpoint,
    PingResponse,
    decode_message,
    encode_message,
    pack_peers,
    unpack_peers,
)
from repro.bittorrent.peer import SimulatedPeer
from repro.bittorrent.tokens import TokenManager
from repro.net.ipv4 import ip_to_int
from repro.sim.events import Scheduler
from repro.sim.nat import HostStack
from repro.sim.rng import RngHub
from repro.sim.udp import UdpFabric

INFO_HASH = bytes(range(20))


class TestTokenManager:
    def test_issue_validate_same_period(self):
        manager = TokenManager(b"secret")
        token = manager.issue(1234, now=10.0)
        assert manager.validate(1234, token, now=20.0)

    def test_token_bound_to_ip(self):
        manager = TokenManager(b"secret")
        token = manager.issue(1234, now=10.0)
        assert not manager.validate(9999, token, now=10.0)

    def test_previous_period_still_valid(self):
        manager = TokenManager(b"secret", rotation_seconds=100.0)
        token = manager.issue(1234, now=50.0)
        assert manager.validate(1234, token, now=150.0)  # next period
        assert not manager.validate(1234, token, now=250.0)  # two later

    def test_distinct_secrets_distinct_tokens(self):
        a = TokenManager(b"one").issue(1, now=0.0)
        b = TokenManager(b"two").issue(1, now=0.0)
        assert a != b

    def test_validation_inputs(self):
        manager = TokenManager(b"secret")
        with pytest.raises(ValueError):
            manager.issue(-1, now=0.0)
        with pytest.raises(ValueError):
            TokenManager(b"")
        with pytest.raises(ValueError):
            TokenManager(b"x", rotation_seconds=0)


class TestCompactPeers:
    def test_roundtrip(self):
        peers = [PeerEndpoint(ip_to_int("1.2.3.4"), 6881)]
        assert unpack_peers(pack_peers(peers)) == peers

    def test_bad_entries(self):
        with pytest.raises(KrpcError):
            unpack_peers([b"short"])
        with pytest.raises(KrpcError):
            unpack_peers([bytes(6)])  # zero port

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerEndpoint(-1, 6881)
        with pytest.raises(ValueError):
            PeerEndpoint(1, 0)


@pytest.fixture()
def dht():
    sched = Scheduler()
    hub = RngHub(33)
    fabric = UdpFabric(sched, hub, loss_rate=0.0)
    rng = hub.stream("t")
    stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
    peer = SimulatedPeer(
        "p",
        ip_to_int("10.0.0.1"),
        stack.open_socket,
        rng,
        now_fn=lambda: sched.now,
    )
    peer.start()
    client = HostStack(fabric, ip_to_int("10.0.0.9"), rng).open_socket()
    inbox = []
    client.on_receive(lambda d: inbox.append(decode_message(d.payload)))
    return sched, peer, client, inbox


class TestGetPeersAnnounceFlow:
    def test_get_peers_returns_token_and_nodes(self, dht):
        sched, peer, client, inbox = dht
        client.send(
            peer.endpoint,
            encode_message(GetPeersQuery(b"\x00\x01", bytes(20), INFO_HASH)),
        )
        sched.run()
        assert len(inbox) == 1
        response = inbox[0]
        assert isinstance(response, GetPeersResponse)
        assert response.token
        assert response.values == ()  # nothing announced yet

    def test_announce_then_get_peers_returns_value(self, dht):
        sched, peer, client, inbox = dht
        client.send(
            peer.endpoint,
            encode_message(GetPeersQuery(b"\x00\x01", bytes(20), INFO_HASH)),
        )
        sched.run()
        token = inbox.pop().token
        client.send(
            peer.endpoint,
            encode_message(
                AnnouncePeerQuery(b"\x00\x02", bytes(20), INFO_HASH, 7000, token)
            ),
        )
        sched.run()
        ack = inbox.pop()
        assert isinstance(ack, PingResponse)
        client.send(
            peer.endpoint,
            encode_message(GetPeersQuery(b"\x00\x03", bytes(20), INFO_HASH)),
        )
        sched.run()
        response = inbox.pop()
        assert isinstance(response, GetPeersResponse)
        assert response.values == (
            PeerEndpoint(ip_to_int("10.0.0.9"), 7000),
        )

    def test_announce_with_bad_token_rejected(self, dht):
        sched, peer, client, inbox = dht
        client.send(
            peer.endpoint,
            encode_message(
                AnnouncePeerQuery(
                    b"\x00\x05", bytes(20), INFO_HASH, 7000, b"forged"
                )
            ),
        )
        sched.run()
        reply = inbox.pop()
        assert isinstance(reply, ErrorMessage)
        assert peer.peer_store.get(INFO_HASH) is None

    def test_token_not_transferable_between_ips(self, dht):
        sched, peer, client, inbox = dht
        client.send(
            peer.endpoint,
            encode_message(GetPeersQuery(b"\x00\x01", bytes(20), INFO_HASH)),
        )
        sched.run()
        token = inbox.pop().token
        # A token issued to 10.0.0.9 must not validate for another IP.
        assert peer._tokens.validate(
            ip_to_int("10.0.0.9"), token, sched.now
        )
        assert not peer._tokens.validate(
            ip_to_int("10.0.0.8"), token, sched.now
        )

    def test_announce_wire_validation(self):
        from repro.bittorrent.bencode import bencode

        blob = bencode(
            {
                b"t": b"aa",
                b"y": b"q",
                b"q": b"announce_peer",
                b"a": {
                    b"id": bytes(20),
                    b"info_hash": bytes(20),
                    b"port": 0,
                    b"token": b"x",
                },
            }
        )
        with pytest.raises(KrpcError):
            decode_message(blob)
