"""Golden regression pins.

The whole reproduction is deterministic under a seed; these pins catch
*accidental* perturbation of the RNG streams (e.g. a new component
drawing from an existing stream instead of its own). If a pin moves
because of an intentional model change, update it consciously and note
the change — that is the point.
"""

import pytest

from repro.experiments.runner import cached_run
from repro.internet.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def world():
    return build_scenario(ScenarioConfig.small(seed=2020))


class TestScenarioPins:
    def test_population_pins(self, world):
        truth = world.truth
        # Pin the structural counts of the canonical small world.
        assert len(truth.lines) > 400
        assert len(truth.users) > len(truth.lines)
        assert len(truth.pools) == 8
        assert len(truth.asdb) == 13

    def test_population_exact_pins(self, world):
        truth = world.truth
        pins = {
            "lines": len(truth.lines),
            "users": len(truth.users),
            "nated_true": len(truth.true_nated_ips()),
            "dyn24s": len(truth.dynamic_slash24s()),
        }
        # Exact values for seed 2020 at the current model version.
        assert pins == {
            "lines": 648,
            "users": 1528,
            "nated_true": 78,
            "dyn24s": 8,
        }

    def test_abuse_and_listing_pins(self, world):
        assert len(world.abuse_events) == 1970
        # Listing pins moved when feed sampling switched to per-list
        # derived RNG streams (catalog-order invariance) — the abuse
        # stream upstream is untouched.
        assert len(world.listings) == 2222
        assert len(world.blocklisted_ips()) == 188

    def test_atlas_pins(self, world):
        assert len(world.deployment.probe_ids()) == 80
        assert len(world.atlas_log) == 7836


class TestRunPins:
    def test_detection_results_stable(self):
        run = cached_run("small", seed=2020)
        # These counts move only when the crawl/detection model moves.
        assert run.crawl.crawler.discovered_ips == len(
            run.crawl.crawler.discovered_addresses()
        )
        assert run.nat.nated_ips() <= set(
            run.scenario.truth.true_nated_ips()
        )
        assert len(run.pipeline.dynamic_prefixes) >= 1
