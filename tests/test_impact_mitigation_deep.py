"""More edge-case coverage: duration stats, funnel, mitigation math."""

import random

import pytest

from repro.blocklists.timeline import Listing, ListingStore
from repro.core.funnel import DetectionFunnel
from repro.core.impact import DurationStats, duration_stats
from repro.core.mitigation import PolicyOutcome, _apply, _attempts
from repro.analysis.cdf import Ecdf


class TestDurationStatsEdges:
    def test_missing_populations_are_none(self):
        stats = DurationStats(all_cdf=None, nated_cdf=None, dynamic_cdf=None)
        assert stats.medians() == {}
        assert stats.removed_within(2) == {}
        assert stats.max_days() == {}

    def test_partial_populations(self):
        stats = DurationStats(
            all_cdf=Ecdf([1, 2, 3]), nated_cdf=None, dynamic_cdf=Ecdf([1])
        )
        medians = stats.medians()
        assert set(medians) == {"all", "dynamic"}
        assert medians["dynamic"] == 1


class TestFunnelInvariants:
    def test_monotone_detects_violations(self):
        good = DetectionFunnel(10, 5, 2, 8, 6, 4, 2, 8)
        assert good.monotone()
        bad = DetectionFunnel(10, 12, 2, 8, 6, 4, 2, 8)
        assert not bad.monotone()
        bad_ripe = DetectionFunnel(10, 5, 2, 4, 6, 4, 2, 8)
        assert not bad_ripe.monotone()

    def test_as_dict_keys(self):
        funnel = DetectionFunnel(1, 1, 1, 1, 1, 1, 1, 8)
        assert set(funnel.as_dict()) == {
            "bittorrent_ips",
            "nated_ips",
            "nated_blocklisted",
            "blocklisted_in_ripe_prefixes",
            "blocklisted_same_as",
            "blocklisted_frequent",
            "blocklisted_daily",
            "allocation_knee",
        }


class TestMitigationInternals:
    def test_attempts_zero_mean(self):
        assert _attempts(random.Random(1), 0.0) == 0
        assert _attempts(random.Random(1), -1.0) == 0

    def test_attempts_mean_tracks(self):
        rng = random.Random(2)
        draws = [_attempts(rng, 3.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 2.6 < mean < 3.4

    def test_apply_block_all(self):
        passed, blocked = _apply("block_all", True, 5, 0.9, random.Random(1))
        assert (passed, blocked) == (0, 5)

    def test_apply_ignore(self):
        passed, blocked = _apply(
            "ignore_lists", False, 5, 0.9, random.Random(1)
        )
        assert (passed, blocked) == (5, 0)

    def test_apply_greylist_nonreused_blocks(self):
        passed, blocked = _apply(
            "greylist_reused", False, 5, 0.9, random.Random(1)
        )
        assert (passed, blocked) == (0, 5)

    def test_apply_greylist_reused_challenges(self):
        rng = random.Random(3)
        passed, blocked = _apply("greylist_reused", True, 200, 0.9, rng)
        assert blocked == 0
        assert 150 < passed <= 200  # ~90% pass the challenge

    def test_apply_zero_attempts(self):
        assert _apply("block_all", True, 0, 0.9, random.Random(1)) == (0, 0)
