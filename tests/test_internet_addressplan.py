"""Tests for address planning and topology generation."""

import random

import pytest

from repro.internet.addressplan import (
    RESERVED_PREFIXES,
    AddressCursor,
    iter_public_slash16s,
)
from repro.internet.topology import RegionMix, TopologyConfig, build_topology
from repro.net.asdb import ASKind
from repro.net.ipv4 import Prefix, int_to_ip, ip_to_int


class TestIterPublicSlash16s:
    def test_skips_reserved(self):
        blocks = []
        it = iter_public_slash16s()
        for _ in range(3000):
            blocks.append(next(it))
        for block in blocks:
            for reserved in RESERVED_PREFIXES:
                assert not reserved.contains_prefix(block), (
                    f"{block} inside reserved {reserved}"
                )

    def test_first_block_is_1_0(self):
        first = next(iter_public_slash16s())
        assert str(first) == "1.0.0.0/16"

    def test_strictly_increasing(self):
        it = iter_public_slash16s()
        previous = next(it)
        for _ in range(500):
            current = next(it)
            assert current.network > previous.network
            previous = current


class TestAddressCursor:
    def test_sequential_addresses(self):
        cursor = AddressCursor([Prefix.from_text("1.0.0.0/24")])
        first = cursor.take_address()
        second = cursor.take_address()
        assert second == first + 1
        assert first == ip_to_int("1.0.0.0")

    def test_exhaustion_raises(self):
        cursor = AddressCursor([Prefix(ip_to_int("1.0.0.0"), 31)])
        cursor.take_address()
        cursor.take_address()
        with pytest.raises(RuntimeError):
            cursor.take_address()

    def test_spans_prefixes(self):
        cursor = AddressCursor(
            [Prefix(ip_to_int("1.0.0.0"), 31), Prefix(ip_to_int("9.0.0.0"), 31)]
        )
        taken = [cursor.take_address() for _ in range(4)]
        assert int_to_ip(taken[2]) == "9.0.0.0"

    def test_slash24_alignment(self):
        cursor = AddressCursor([Prefix.from_text("1.0.0.0/22")])
        cursor.take_address()  # dirty the current /24
        blocks = cursor.take_slash24s(2)
        assert all(b.network % 256 == 0 for b in blocks)
        assert blocks[0] == Prefix.from_text("1.0.1.0/24")
        assert blocks[1] == Prefix.from_text("1.0.2.0/24")

    def test_take_slash24s_count_validation(self):
        cursor = AddressCursor([Prefix.from_text("1.0.0.0/24")])
        with pytest.raises(ValueError):
            cursor.take_slash24s(0)

    def test_slash24s_dont_overlap_addresses(self):
        cursor = AddressCursor([Prefix.from_text("1.0.0.0/22")])
        blocks = cursor.take_slash24s(1)
        next_addr = cursor.take_address()
        assert next_addr > blocks[0].last()

    def test_empty_prefixes_rejected(self):
        with pytest.raises(ValueError):
            AddressCursor([])


class TestTopology:
    def test_counts_and_kinds(self):
        config = TopologyConfig(n_eyeball=10, n_hosting=4, n_backbone=2)
        topo = build_topology(config, random.Random(1))
        assert len(topo.eyeball_asns) == 10
        assert len(topo.hosting_asns) == 4
        assert len(topo.backbone_asns) == 2
        assert len(topo.asdb) == 16
        for asn in topo.eyeball_asns:
            assert topo.asdb.get(asn).kind == ASKind.EYEBALL

    def test_every_as_has_prefixes_and_cursor(self):
        topo = build_topology(TopologyConfig(n_eyeball=5), random.Random(2))
        for record in topo.asdb:
            assert record.prefixes
            assert record.asn in topo.cursors

    def test_prefixes_disjoint_across_ases(self):
        topo = build_topology(TopologyConfig(n_eyeball=20), random.Random(3))
        seen = set()
        for record in topo.asdb:
            for prefix in record.prefixes:
                assert prefix.network not in seen
                seen.add(prefix.network)

    def test_ip_resolves_to_owner(self):
        topo = build_topology(TopologyConfig(n_eyeball=6), random.Random(4))
        for record in topo.asdb:
            probe_ip = record.prefixes[0].first() + 5
            assert topo.asdb.asn_of(probe_ip) == record.asn

    def test_zipf_sizing_head_heavier(self):
        config = TopologyConfig(n_eyeball=30, max_slash16s=8)
        topo = build_topology(config, random.Random(5))
        sizes = [
            len(topo.asdb.get(asn).prefixes) for asn in topo.eyeball_asns
        ]
        assert sizes[0] >= sizes[-1]
        assert max(sizes) <= config.max_slash16s

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            build_topology(
                TopologyConfig(n_eyeball=0, n_hosting=0, n_backbone=0),
                random.Random(1),
            )

    def test_region_mix_weights(self):
        mix = RegionMix()
        weights = mix.weights()
        assert abs(sum(weights) - 1.0) < 1e-9

    def test_deterministic(self):
        a = build_topology(TopologyConfig(), random.Random(7))
        b = build_topology(TopologyConfig(), random.Random(7))
        assert [r.asn for r in a.asdb] == [r.asn for r in b.asdb]
        assert [r.country for r in a.asdb] == [r.country for r in b.asdb]
