"""Tests for DHCP pools and assignment timelines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.internet.dhcp import AssignmentTimeline, DhcpPool, LineChurnSpec
from repro.net.ipv4 import Prefix


def make_pool(n_blocks=1):
    prefixes = [Prefix(0x01000000 + i * 256, 24) for i in range(n_blocks)]
    return DhcpPool(pool_id="p", asn=64500, prefixes=prefixes)


class TestAssignmentTimeline:
    def test_single_entry(self):
        t = AssignmentTimeline([(0.0, 42)], horizon=100.0)
        assert t.ip_at(50.0) == 42
        assert t.ip_at(-1.0) is None
        assert t.ip_at(101.0) is None
        assert t.change_count() == 0
        assert t.allocation_count() == 1
        assert t.mean_holding_days() == 100.0

    def test_multi_entry_lookup(self):
        t = AssignmentTimeline([(0.0, 1), (10.0, 2), (20.0, 3)], horizon=30.0)
        assert t.ip_at(5.0) == 1
        assert t.ip_at(10.0) == 2
        assert t.ip_at(15.0) == 2
        assert t.ip_at(25.0) == 3
        assert t.addresses() == {1, 2, 3}
        assert t.change_count() == 2
        assert t.mean_holding_days() == 10.0

    def test_intervals(self):
        t = AssignmentTimeline([(0.0, 1), (10.0, 2)], horizon=30.0)
        assert list(t.intervals()) == [(0.0, 10.0, 1), (10.0, 30.0, 2)]

    def test_unordered_rejected(self):
        with pytest.raises(ValueError):
            AssignmentTimeline([(5.0, 1), (1.0, 2)], horizon=10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AssignmentTimeline([], horizon=10.0)

    def test_horizon_before_last_rejected(self):
        with pytest.raises(ValueError):
            AssignmentTimeline([(0.0, 1), (10.0, 2)], horizon=5.0)


class TestLineChurnSpec:
    def test_positive_mean_required(self):
        with pytest.raises(ValueError):
            LineChurnSpec("l1", 0.0)


class TestDhcpPool:
    def test_slash24s(self):
        pool = make_pool(3)
        assert len(pool.slash24s()) == 3

    def test_slash24s_from_wider_prefix(self):
        pool = DhcpPool("p", 1, [Prefix(0x01000000, 23)])
        assert len(pool.slash24s()) == 2

    def test_simulate_populates_timelines(self):
        pool = make_pool()
        specs = [LineChurnSpec(f"l{i}", 5.0) for i in range(20)]
        pool.simulate(specs, 100.0, random.Random(1))
        assert set(pool.timelines) == {f"l{i}" for i in range(20)}
        for t in pool.timelines.values():
            assert t.allocation_count() >= 1

    def test_exclusivity_invariant(self):
        """No two lines hold one address at the same instant."""
        pool = make_pool()
        specs = [LineChurnSpec(f"l{i}", 2.0) for i in range(30)]
        pool.simulate(specs, 60.0, random.Random(2))
        for day in [0.5, 7.3, 22.9, 41.1, 59.5]:
            held = [
                t.ip_at(day)
                for t in pool.timelines.values()
                if t.ip_at(day) is not None
            ]
            assert len(held) == len(set(held)), f"collision at day {day}"

    def test_addresses_stay_in_pool(self):
        pool = make_pool(2)
        valid = set(pool.addresses())
        specs = [LineChurnSpec(f"l{i}", 1.0) for i in range(10)]
        pool.simulate(specs, 30.0, random.Random(3))
        for t in pool.timelines.values():
            assert t.addresses() <= valid

    def test_fast_lines_change_more(self):
        pool = make_pool(2)
        specs = [LineChurnSpec("fast", 1.0), LineChurnSpec("slow", 50.0)]
        pool.simulate(specs, 200.0, random.Random(4))
        assert (
            pool.timelines["fast"].change_count()
            > pool.timelines["slow"].change_count()
        )

    def test_overfull_pool_rejected(self):
        pool = DhcpPool("p", 1, [Prefix(0x01000000, 30)])  # 4 addresses
        specs = [LineChurnSpec(f"l{i}", 1.0) for i in range(4)]
        with pytest.raises(ValueError):
            pool.simulate(specs, 10.0, random.Random(1))

    def test_bad_horizon_rejected(self):
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.simulate([LineChurnSpec("l", 1.0)], 0.0, random.Random(1))

    def test_line_holding_reverse_lookup(self):
        pool = make_pool()
        specs = [LineChurnSpec("l0", 1000.0)]
        pool.simulate(specs, 10.0, random.Random(5))
        ip = pool.timelines["l0"].ip_at(5.0)
        assert pool.line_holding(ip, 5.0) == "l0"
        free_ip = next(a for a in pool.addresses() if a != ip)
        assert pool.line_holding(free_ip, 5.0) is None

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=200))
    def test_change_points_create_reuse_opportunities(self, seed):
        """After a change, the released address returns to the free set
        and can be assigned to another line later — the reuse mechanism
        underlying unjust blocking."""
        pool = make_pool()
        specs = [LineChurnSpec(f"l{i}", 3.0) for i in range(40)]
        pool.simulate(specs, 120.0, random.Random(seed))
        holders_per_ip = {}
        for line_key, timeline in pool.timelines.items():
            for ip in timeline.addresses():
                holders_per_ip.setdefault(ip, set()).add(line_key)
        assert any(len(holders) >= 2 for holders in holders_per_ip.values())
