"""Tests for population synthesis, ground truth, and the abuse model."""

import random

import pytest

from repro.internet.abuse import (
    AbuseCategory,
    AbuseConfig,
    AbuseEvent,
    generate_abuse,
)
from repro.internet.groundtruth import (
    ADDRESSING_DYNAMIC,
    ADDRESSING_STATIC,
    GroundTruth,
    LineInfo,
    NAT_CGN,
    NAT_HOME,
    NAT_NONE,
    UserInfo,
)
from repro.internet.population import PopulationConfig, build_population
from repro.internet.topology import TopologyConfig, build_topology
from repro.net.asdb import ASDatabase


def small_truth(seed=1):
    topo = build_topology(
        TopologyConfig(n_eyeball=4, n_hosting=2, n_backbone=1, max_slash16s=1),
        random.Random(seed),
    )
    config = PopulationConfig(
        static_single_lines_per_16=10,
        home_nat_lines_per_16=5,
        cgn_sites_per_16=1.0,
        dynamic_pools_per_as_range=(1, 1),
        pool_slash24s_range=(1, 1),
        pool_lines_per_24=20,
        fast_pool_lines_per_24=10,
        bt_blocked_as_fraction=0.0,
    )
    return build_population(topo, config, random.Random(seed)), topo, config


class TestGroundTruthContainer:
    def test_duplicate_line_rejected(self):
        truth = GroundTruth(ASDatabase(), 10.0)
        line = LineInfo(key="l1", asn=1, static_ip=1)
        truth.add_line(line)
        with pytest.raises(ValueError):
            truth.add_line(line)

    def test_user_requires_line(self):
        truth = GroundTruth(ASDatabase(), 10.0)
        with pytest.raises(KeyError):
            truth.add_user(UserInfo(key="u1", line_key="missing"))

    def test_line_validation(self):
        with pytest.raises(ValueError):
            LineInfo(key="l", asn=1, addressing="weird", static_ip=1)
        with pytest.raises(ValueError):
            LineInfo(key="l", asn=1, nat="weird", static_ip=1)
        with pytest.raises(ValueError):
            LineInfo(key="l", asn=1, addressing=ADDRESSING_STATIC)
        with pytest.raises(ValueError):
            LineInfo(key="l", asn=1, addressing=ADDRESSING_DYNAMIC)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            GroundTruth(ASDatabase(), 0.0)


class TestPopulation:
    def test_structure(self):
        truth, topo, config = small_truth()
        assert len(truth.lines) > 0
        assert len(truth.users) >= len(truth.lines)
        assert len(truth.pools) == 4  # one per eyeball AS

    def test_static_lines_have_owner_as_address(self):
        truth, topo, _ = small_truth()
        for line in truth.lines.values():
            if line.static_ip is not None:
                assert truth.asdb.asn_of(line.static_ip) == line.asn

    def test_nat_lines_have_multiple_users(self):
        truth, _, _ = small_truth()
        nat_lines = [l for l in truth.lines.values() if l.nat == NAT_HOME]
        assert nat_lines
        assert all(len(l.user_keys) >= 2 for l in nat_lines)

    def test_cgn_bigger_than_home(self):
        truth, _, config = small_truth()
        cgns = [l for l in truth.lines.values() if l.nat == NAT_CGN]
        homes = [l for l in truth.lines.values() if l.nat == NAT_HOME]
        assert cgns and homes
        assert min(len(l.user_keys) for l in cgns) > max(
            len(l.user_keys) for l in homes
        )

    def test_true_nated_ips_match_nat_lines(self):
        truth, _, _ = small_truth()
        nated = truth.true_nated_ips()
        for line in truth.lines.values():
            if line.nat != NAT_NONE and len(line.user_keys) >= 2:
                assert line.static_ip in nated

    def test_detectable_subset_of_true(self):
        truth, _, _ = small_truth()
        assert set(truth.detectable_nated_ips()) <= set(truth.true_nated_ips())

    def test_dynamic_lines_have_pool_timelines(self):
        truth, _, _ = small_truth()
        for line in truth.lines.values():
            if line.addressing == ADDRESSING_DYNAMIC:
                pool = truth.pools[line.pool_id]
                assert line.key in pool.timelines

    def test_ip_of_line_static_and_dynamic(self):
        truth, _, _ = small_truth()
        static = next(
            l for l in truth.lines.values() if l.addressing == ADDRESSING_STATIC
        )
        assert truth.ip_of_line(static.key, 5.0) == static.static_ip
        dynamic = next(
            l for l in truth.lines.values() if l.addressing == ADDRESSING_DYNAMIC
        )
        ip = truth.ip_of_line(dynamic.key, 5.0)
        assert ip is not None
        assert truth.asdb.asn_of(ip) == dynamic.asn

    def test_dynamic_slash24s_cover_pool_space(self):
        truth, _, _ = small_truth()
        blocks = truth.dynamic_slash24s()
        for pool in truth.pools.values():
            for block in pool.slash24s():
                assert block in blocks

    def test_fast_dynamic_subset(self):
        truth, _, _ = small_truth()
        assert truth.fast_dynamic_slash24s() <= truth.dynamic_slash24s()

    def test_bt_blocked_as_zeroes_adoption(self):
        topo = build_topology(
            TopologyConfig(n_eyeball=4, n_hosting=1, n_backbone=1, max_slash16s=1),
            random.Random(9),
        )
        config = PopulationConfig(
            static_single_lines_per_16=20,
            home_nat_lines_per_16=3,
            cgn_sites_per_16=0.0,
            dynamic_pools_per_as_range=(0, 0),
            bt_blocked_as_fraction=1.0,
        )
        truth = build_population(topo, config, random.Random(9))
        assert not truth.bittorrent_lines()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(pool_lines_per_24=255)
        with pytest.raises(ValueError):
            PopulationConfig(cgn_users_range=(10, 5))
        with pytest.raises(ValueError):
            PopulationConfig(
                home_nat_user_sizes=(2, 3), home_nat_user_weights=(1.0,)
            )


class TestAbuse:
    def test_events_match_ground_truth_addresses(self):
        truth, _, _ = small_truth()
        events = generate_abuse(truth, AbuseConfig(), random.Random(3))
        assert events
        for event in events[:300]:
            user = truth.users[event.user_key]
            expected = truth.ip_of_line(user.line_key, event.day + 0.5)
            assert event.ip == expected

    def test_compromised_flagged(self):
        truth, _, _ = small_truth()
        events = generate_abuse(truth, AbuseConfig(), random.Random(3))
        emitters = {e.user_key for e in events}
        for user_key in emitters:
            assert truth.users[user_key].compromised

    def test_events_within_horizon(self):
        truth, _, _ = small_truth()
        events = generate_abuse(truth, AbuseConfig(), random.Random(3))
        assert all(0 <= e.day < truth.horizon_days for e in events)

    def test_events_sorted(self):
        truth, _, _ = small_truth()
        events = generate_abuse(truth, AbuseConfig(), random.Random(3))
        keys = [(e.day, e.ip, e.category) for e in events]
        assert keys == sorted(keys)

    def test_category_validation(self):
        with pytest.raises(ValueError):
            AbuseEvent(day=1, ip=1, user_key="u", category="phrenology")

    def test_zero_rates_no_events(self):
        truth, _, _ = small_truth()
        config = AbuseConfig(
            compromise_rate_bt=0.0,
            compromise_rate_other=0.0,
            compromise_rate_dynamic=0.0,
            compromise_rate_hosting=0.0,
        )
        assert generate_abuse(truth, config, random.Random(1)) == []

    def test_dynamic_compromise_spreads_addresses(self):
        truth, _, _ = small_truth()
        config = AbuseConfig(
            compromise_rate_bt=0.0,
            compromise_rate_other=0.0,
            compromise_rate_hosting=0.0,
            compromise_rate_dynamic=1.0,
            persistent_fraction=1.0,
            persistent_duration_mean_days=40.0,
        )
        events = generate_abuse(truth, config, random.Random(5))
        by_user = {}
        for e in events:
            by_user.setdefault(e.user_key, set()).add(e.ip)
        # At least one fast-pool abuser smears across several addresses.
        assert max(len(ips) for ips in by_user.values()) >= 3
