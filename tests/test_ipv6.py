"""Tests for the IPv6 / Entropy-IP extension."""

import ipaddress
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipv6.addr6 import (
    MAX_IPV6,
    NIBBLES,
    Prefix6,
    int_to_ip6,
    interface_id,
    ip6_to_int,
    nibble,
    nibbles,
    subnet_of,
)
from repro.ipv6.entropyip import (
    REUSE_ROTATING,
    REUSE_STABLE,
    SEGMENT_CONSTANT,
    SEGMENT_RANDOM,
    SEGMENT_STRUCTURED,
    analyze,
    classify_reuse_risk,
    nibble_entropies,
)
from repro.ipv6.generator import Strategy, SubnetPlan, generate_corpus


class TestAddr6Parsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            (
                "2001:0db8:0000:0000:0000:0000:0000:0001",
                (0x20010DB8 << 96) | 1,
            ),
            ("::ffff:1.2.3.4", 0xFFFF01020304),
            ("fe80::1%", None),  # handled below
        ],
    )
    def test_vectors(self, text, expected):
        if expected is None:
            with pytest.raises(ValueError):
                ip6_to_int(text)
        else:
            assert ip6_to_int(text) == expected

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":::",
            "1::2::3",
            "2001:db8",  # too few groups
            "1:2:3:4:5:6:7:8:9",
            "2001:dg8::1",
            "2001:db8::1/64",
            "::1.2.3.4.5",
            "12345::",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            ip6_to_int(bad)

    def test_format_bounds(self):
        with pytest.raises(ValueError):
            int_to_ip6(-1)
        with pytest.raises(ValueError):
            int_to_ip6(MAX_IPV6 + 1)

    def test_rfc5952_compression_rules(self):
        # Longest run compressed; single zero group not compressed.
        assert int_to_ip6(ip6_to_int("2001:0:0:1:0:0:0:1")) == "2001:0:0:1::1"
        assert int_to_ip6(ip6_to_int("2001:db8:0:1:1:1:1:1")) == (
            "2001:db8:0:1:1:1:1:1"
        )

    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_format_matches_stdlib(self, value):
        assert int_to_ip6(value) == str(ipaddress.IPv6Address(value))

    @settings(max_examples=300, deadline=None)
    @given(st.integers(min_value=0, max_value=MAX_IPV6))
    def test_roundtrip(self, value):
        assert ip6_to_int(int_to_ip6(value)) == value


class TestNibblesAndPrefix:
    def test_nibble_order(self):
        value = ip6_to_int("f000::")
        assert nibble(value, 0) == 0xF
        assert nibble(value, 31) == 0
        assert nibbles(value)[0] == 0xF

    def test_nibble_bounds(self):
        with pytest.raises(ValueError):
            nibble(0, 32)

    def test_nibbles_roundtrip(self):
        value = ip6_to_int("2001:db8::42")
        out = 0
        for n in nibbles(value):
            out = (out << 4) | n
        assert out == value

    def test_prefix_contains(self):
        p = Prefix6.from_text("2001:db8::/32")
        assert p.contains(ip6_to_int("2001:db8:ffff::1"))
        assert not p.contains(ip6_to_int("2001:db9::1"))

    def test_prefix_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix6.from_text("2001:db8::1/32")

    def test_subnet_and_iid(self):
        value = ip6_to_int("2001:db8:aaaa:bbbb:1234:5678:9abc:def0")
        assert str(subnet_of(value)) == "2001:db8:aaaa:bbbb::/64"
        assert interface_id(value) == 0x123456789ABCDEF0


def make_plans():
    return [
        SubnetPlan(
            Prefix6.from_text("2001:db8:1:1::/64"), Strategy.PRIVACY, hosts=80
        ),
        SubnetPlan(
            Prefix6.from_text("2001:db8:1:2::/64"), Strategy.EUI64, hosts=80
        ),
        SubnetPlan(
            Prefix6.from_text("2001:db8:1:3::/64"),
            Strategy.SEQUENTIAL,
            hosts=80,
        ),
        SubnetPlan(
            Prefix6.from_text("2001:db8:1:4::/64"), Strategy.SERVICE, hosts=40
        ),
    ]


class TestGenerator:
    def test_corpus_within_subnets(self):
        corpus = generate_corpus(make_plans(), random.Random(1))
        subnets = {str(subnet_of(a)) for a in corpus}
        assert subnets <= {
            "2001:db8:1:1::/64",
            "2001:db8:1:2::/64",
            "2001:db8:1:3::/64",
            "2001:db8:1:4::/64",
        }

    def test_eui64_signature(self):
        plan = SubnetPlan(
            Prefix6.from_text("2001:db8::/64"), Strategy.EUI64, hosts=50
        )
        corpus = generate_corpus([plan], random.Random(2))
        for address in corpus:
            iid = interface_id(address)
            assert (iid >> 24) & 0xFFFF == 0xFFFE  # the ff:fe marker

    def test_sequential_low_values(self):
        plan = SubnetPlan(
            Prefix6.from_text("2001:db8::/64"), Strategy.SEQUENTIAL, hosts=20
        )
        corpus = generate_corpus([plan], random.Random(3))
        assert {interface_id(a) for a in corpus} == set(range(1, 21))

    def test_validation(self):
        with pytest.raises(ValueError):
            SubnetPlan(Prefix6.from_text("2001:db8::/48"), Strategy.EUI64)
        with pytest.raises(ValueError):
            SubnetPlan(
                Prefix6.from_text("2001:db8::/64"), "tarot", hosts=10
            )
        with pytest.raises(ValueError):
            generate_corpus([], random.Random(1))


class TestEntropyIp:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            nibble_entropies([])

    def test_constant_corpus_zero_entropy(self):
        corpus = [ip6_to_int("2001:db8::1")] * 50
        assert all(h == 0.0 for h in nibble_entropies(corpus))

    def test_random_iid_high_entropy(self):
        rng = random.Random(4)
        base = ip6_to_int("2001:db8::")
        corpus = [base | rng.getrandbits(64) for _ in range(400)]
        entropies = nibble_entropies(corpus)
        assert all(h < 0.05 for h in entropies[:16])
        assert all(h > 0.8 for h in entropies[16:])

    def test_segments_cover_all_nibbles(self):
        corpus = generate_corpus(make_plans(), random.Random(5))
        structure = analyze(corpus)
        covered = sorted(
            i
            for s in structure.segments
            for i in range(s.start, s.end + 1)
        )
        assert covered == list(range(NIBBLES))

    def test_segment_kinds(self):
        corpus = generate_corpus(make_plans(), random.Random(5))
        structure = analyze(corpus)
        kinds = {s.kind for s in structure.segments}
        assert SEGMENT_CONSTANT in kinds  # the fixed site prefix
        # The mixed IID region carries entropy.
        assert SEGMENT_RANDOM in kinds or SEGMENT_STRUCTURED in kinds

    def test_constant_segment_mines_prefix_value(self):
        corpus = generate_corpus(make_plans(), random.Random(5))
        structure = analyze(corpus)
        first = structure.segments[0]
        assert first.kind == SEGMENT_CONSTANT
        assert first.top_values[0][1] == 1.0
        assert first.top_values[0][0].startswith("20010db8")

    def test_segment_at(self):
        corpus = generate_corpus(make_plans(), random.Random(5))
        structure = analyze(corpus)
        assert structure.segment_at(0).start == 0
        with pytest.raises(IndexError):
            structure.segment_at(99)

    def test_render_contains_summary(self):
        corpus = generate_corpus(make_plans(), random.Random(5))
        text = analyze(corpus).render()
        assert "corpus:" in text and "nibbles" in text


class TestReuseRisk:
    def test_privacy_rotating_eui64_stable(self):
        corpus = generate_corpus(make_plans(), random.Random(6))
        verdicts = classify_reuse_risk(corpus)
        assert verdicts["2001:db8:1:1::/64"] == REUSE_ROTATING
        assert verdicts["2001:db8:1:2::/64"] == REUSE_STABLE
        assert verdicts["2001:db8:1:3::/64"] == REUSE_STABLE
        assert verdicts["2001:db8:1:4::/64"] == REUSE_STABLE

    def test_small_samples_default_stable(self):
        corpus = [ip6_to_int("2001:db8::1"), ip6_to_int("2001:db8::2")]
        verdicts = classify_reuse_risk(corpus)
        assert verdicts["2001:db8::/64"] == REUSE_STABLE


class TestCandidateGeneration:
    def test_samples_respect_constant_prefix(self):
        corpus = generate_corpus(make_plans(), random.Random(7))
        structure = analyze(corpus)
        rng = random.Random(8)
        candidates = structure.generate_candidates(rng, 50)
        assert len(candidates) == 50
        # All candidates carry the constant site prefix.
        site = ip6_to_int("2001:db8:1::") >> 96
        for candidate in candidates:
            assert candidate >> 96 == (site | 0)

    def test_sample_subnet_nibble_from_mined_values(self):
        corpus = generate_corpus(make_plans(), random.Random(7))
        structure = analyze(corpus)
        rng = random.Random(9)
        seen_subnets = {
            (structure.sample(rng) >> 64) & 0xFFFF for _ in range(200)
        }
        # Candidates stay within the observed subnet ids 1..4.
        assert seen_subnets <= {1, 2, 3, 4}

    def test_generate_candidates_validation(self):
        corpus = generate_corpus(make_plans(), random.Random(7))
        structure = analyze(corpus)
        with pytest.raises(ValueError):
            structure.generate_candidates(random.Random(1), 0)
