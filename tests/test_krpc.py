"""Tests for KRPC message encoding/decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.krpc import (
    ErrorMessage,
    GetNodesQuery,
    GetNodesResponse,
    KrpcError,
    NodeInfo,
    PingQuery,
    PingResponse,
    TransactionCounter,
    decode_message,
    encode_message,
    pack_nodes,
    unpack_nodes,
)
from repro.net.ipv4 import ip_to_int

ID_A = bytes(range(20))
ID_B = bytes(20)


class TestNodeInfo:
    def test_valid(self):
        n = NodeInfo(ID_A, ip_to_int("1.2.3.4"), 6881)
        assert n.port == 6881

    def test_bad_id(self):
        with pytest.raises(ValueError):
            NodeInfo(b"short", 1, 6881)

    def test_bad_port(self):
        with pytest.raises(ValueError):
            NodeInfo(ID_A, 1, 0)


class TestCompactNodes:
    def test_roundtrip(self):
        nodes = [
            NodeInfo(ID_A, ip_to_int("1.2.3.4"), 6881),
            NodeInfo(ID_B, ip_to_int("255.0.0.1"), 65535),
        ]
        assert unpack_nodes(pack_nodes(nodes)) == nodes

    def test_empty(self):
        assert unpack_nodes(b"") == []
        assert pack_nodes([]) == b""

    def test_bad_length(self):
        with pytest.raises(KrpcError):
            unpack_nodes(b"x" * 27)

    def test_zero_port_rejected(self):
        blob = ID_A + (1).to_bytes(4, "big") + (0).to_bytes(2, "big")
        with pytest.raises(KrpcError):
            unpack_nodes(blob)


class TestMessageRoundtrips:
    def test_ping_query(self):
        msg = PingQuery(b"\x00\x01", ID_A)
        assert decode_message(encode_message(msg)) == msg

    def test_get_nodes_query(self):
        msg = GetNodesQuery(b"\x00\x02", ID_A, ID_B)
        assert decode_message(encode_message(msg)) == msg

    def test_ping_response(self):
        msg = PingResponse(b"\x00\x03", ID_A, b"UT\x03\x05")
        assert decode_message(encode_message(msg)) == msg

    def test_ping_response_no_version(self):
        msg = PingResponse(b"\x00\x03", ID_A)
        assert decode_message(encode_message(msg)) == msg

    def test_get_nodes_response(self):
        nodes = (NodeInfo(ID_B, ip_to_int("9.9.9.9"), 1234),)
        msg = GetNodesResponse(b"\x01\x00", ID_A, nodes, b"LT\x01\x02")
        assert decode_message(encode_message(msg)) == msg

    def test_get_nodes_response_empty_nodes(self):
        msg = GetNodesResponse(b"\x01\x00", ID_A, ())
        assert decode_message(encode_message(msg)) == msg

    def test_error(self):
        msg = ErrorMessage(b"\x02\x00", 203, "protocol error")
        assert decode_message(encode_message(msg)) == msg

    def test_encode_rejects_non_message(self):
        with pytest.raises(TypeError):
            encode_message("nope")  # type: ignore[arg-type]


class TestDecodeRejects:
    @pytest.mark.parametrize(
        "blob",
        [
            b"not bencode",
            b"le",  # not a dict
            b"d1:y1:qe",  # missing txn
            b"d1:t2:xx1:y1:xe",  # unknown kind
            b"d1:t2:xx1:y1:qe",  # query without args
            b"d1:a d0:e1:q4:ping1:t2:xx1:y1:qe".replace(b" ", b""),  # bad id
        ],
    )
    def test_malformed(self, blob):
        with pytest.raises(KrpcError):
            decode_message(blob)

    def test_unknown_method(self):
        from repro.bittorrent.bencode import bencode

        blob = bencode(
            {b"t": b"aa", b"y": b"q", b"q": b"announce_peer", b"a": {b"id": ID_A}}
        )
        with pytest.raises(KrpcError):
            decode_message(blob)

    def test_bad_error_body(self):
        from repro.bittorrent.bencode import bencode

        blob = bencode({b"t": b"aa", b"y": b"e", b"e": [1, 2]})
        with pytest.raises(KrpcError):
            decode_message(blob)

    def test_response_bad_nodes_blob(self):
        from repro.bittorrent.bencode import bencode

        blob = bencode(
            {b"t": b"aa", b"y": b"r", b"r": {b"id": ID_A, b"nodes": b"xyz"}}
        )
        with pytest.raises(KrpcError):
            decode_message(blob)


class TestTransactionCounter:
    def test_unique_and_min_width(self):
        txns = TransactionCounter()
        seen = {txns.next() for _ in range(300)}
        assert len(seen) == 300
        assert all(len(t) >= 2 for t in seen)


@settings(max_examples=60, deadline=None)
@given(
    st.binary(min_size=2, max_size=4),
    st.binary(min_size=20, max_size=20),
    st.lists(
        st.tuples(
            st.binary(min_size=20, max_size=20),
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            st.integers(min_value=1, max_value=65535),
        ),
        max_size=8,
    ),
)
def test_get_nodes_roundtrip_property(txn, responder, raw_nodes):
    nodes = tuple(NodeInfo(i, ip, port) for i, ip, port in raw_nodes)
    msg = GetNodesResponse(txn, responder, nodes)
    assert decode_message(encode_message(msg)) == msg
