"""Load-generator tests: shared stats, mix registry, deterministic
schedules, the hot-range detector policy, and the harness driving a
live single-process server.

Determinism is the load subsystem's contract: the same mix, population
and seed must produce byte-identical schedules, because an SLO
regression is only meaningful if two runs replayed the same traffic.
"""

import json
import socket

import pytest

from repro.cli import main
from repro.cluster import HotRangeDetector
from repro.loadgen import (
    LoadHarness,
    MIXES,
    MixSpec,
    TrafficGenerator,
    get_mix,
    mix_names,
    percentile,
    population_from_analysis,
    population_from_hitlist,
    render_report,
    summarize,
    window_day_workload,
)
from repro.service.client import ReputationClient
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer


@pytest.fixture(scope="module")
def analysis(small_full_run):
    return small_full_run.analysis


@pytest.fixture(scope="module")
def full_index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


class TestStats:
    def test_percentile_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0
        # Nearest-rank on sorted samples: ordered[int(q * (n - 1))].
        ordered = sorted(samples)
        for q in (0.1, 0.25, 0.9, 0.99):
            assert percentile(samples, q) == ordered[int(q * 4)]

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="out of range"):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="out of range"):
            percentile([1.0], -0.1)

    def test_summarize_digest(self):
        samples = [float(v) for v in range(1, 101)]
        digest = summarize(samples)
        assert digest["count"] == 100
        assert digest["mean"] == pytest.approx(50.5)
        assert digest["p50"] == percentile(samples, 0.5)
        assert digest["p90"] == percentile(samples, 0.9)
        assert digest["p99"] == percentile(samples, 0.99)
        assert digest["max"] == 100.0

    def test_summarize_empty_is_zeroed(self):
        digest = summarize([])
        assert digest["count"] == 0
        assert digest["p99"] == 0.0 and digest["max"] == 0.0

    def test_window_day_workload_shape(self, analysis):
        pairs = window_day_workload(analysis, 500)
        assert len(pairs) == 500
        listed = set(analysis.blocklisted_ips)
        days = set()
        for start, end in analysis.windows:
            days.update((start, (start + end) // 2, end))
        assert all(ip in listed for ip, _ in pairs)
        assert all(day in days for _, day in pairs)

    def test_window_day_workload_truncates_and_repeats(self, analysis):
        short = window_day_workload(analysis, 3)
        assert len(short) == 3
        huge = window_day_workload(analysis, 10_000)
        assert len(huge) == 10_000
        # Repetition is cyclic: the head repeats verbatim.
        assert huge[: len(short)] == short


class TestMixes:
    def test_registry_names(self):
        assert set(mix_names()) == set(MIXES)
        assert "steady" in MIXES and "hot-range" in MIXES

    def test_get_mix_unknown_lists_options(self):
        with pytest.raises(KeyError, match="steady"):
            get_mix("nope")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"zipf_s": -0.1},
            {"hot_ips": 0},
            {"batch_fraction": 1.5},
            {"batch_size": 0},
            {"burst_factor": 0.5},
            {"burst_fraction": 1.0},
            {"churn_storms": -1},
        ],
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            MixSpec("bad", "invalid knobs", **kwargs)


class TestGenerator:
    def test_same_seed_same_schedule(self, analysis):
        mix = get_mix("steady")
        ips, days = population_from_analysis(mix, analysis)
        one = TrafficGenerator(mix, ips, days, seed=7)
        two = TrafficGenerator(mix, ips, days, seed=7)
        assert one.schedule(2000, 5000.0) == two.schedule(2000, 5000.0)

    def test_different_seed_differs(self, analysis):
        mix = get_mix("steady")
        ips, days = population_from_analysis(mix, analysis)
        one = TrafficGenerator(mix, ips, days, seed=1).schedule(500, 5000.0)
        two = TrafficGenerator(mix, ips, days, seed=2).schedule(500, 5000.0)
        assert one != two

    def test_schedule_carries_exact_query_count(self, analysis):
        hitlist = [(0x20010DB8 << 96) | (n << 64) | n for n in range(64)]
        for name in mix_names():
            mix = get_mix(name)
            if mix.family == "ipv6":
                ips, days = population_from_hitlist(mix, hitlist)
            else:
                ips, days = population_from_analysis(mix, analysis)
            events = TrafficGenerator(mix, ips, days).schedule(
                1000, 10_000.0
            )
            assert sum(e.queries() for e in events) == 1000
            assert all(
                e.queries() <= mix.batch_size
                for e in events
                if e.kind == "batch"
            )
            assert all(
                e.queries() == 1 for e in events if e.kind == "point"
            )

    def test_due_times_are_monotonic(self, analysis):
        mix = get_mix("hot-range")
        ips, days = population_from_analysis(mix, analysis)
        events = TrafficGenerator(mix, ips, days).schedule(800, 8000.0)
        ats = [e.at for e in events]
        assert ats == sorted(ats)
        assert ats[0] > 0.0

    def test_hot_block_concentrates_traffic(self, analysis):
        mix = get_mix("hot-range")
        ips, days = population_from_analysis(mix, analysis)
        # The hot head shares a single /24 ...
        head = ips[: mix.hot_ips]
        assert len({ip >> 8 for ip in head}) == 1
        hot_block = head[0] >> 8
        # ... and the zipf skew routes most queries into it.
        events = TrafficGenerator(mix, ips, days).schedule(
            2000, 10_000.0
        )
        queried = [
            ip for e in events for ip, _ in e.pairs
        ]
        in_block = sum(1 for ip in queried if (ip >> 8) == hot_block)
        assert in_block / len(queried) > 0.6

    def test_storm_times_evenly_spread(self, analysis):
        mix = get_mix("churn-storm")
        ips, days = population_from_analysis(mix, analysis)
        times = TrafficGenerator(mix, ips, days).storm_times(8.0)
        assert times == [2.0, 4.0, 6.0]

    def test_validation(self, analysis):
        mix = get_mix("steady")
        ips, days = population_from_analysis(mix, analysis)
        generator = TrafficGenerator(mix, ips, days)
        with pytest.raises(ValueError, match="at least one"):
            generator.schedule(0, 100.0)
        with pytest.raises(ValueError, match="positive"):
            generator.schedule(10, 0.0)
        with pytest.raises(ValueError, match="address population"):
            TrafficGenerator(mix, [], days)
        with pytest.raises(ValueError, match="day population"):
            TrafficGenerator(mix, ips, [])


def _snapshot(epoch, hits):
    return {
        "partition_epoch": epoch,
        "shards": [{"shard": i, "hits": h} for i, h in enumerate(hits)],
    }


class TestHotRangeDetector:
    def test_nominates_after_sustained_heat(self):
        detector = HotRangeDetector(factor=2.0, sustain=3, min_hits=10)
        assert detector.observe(_snapshot(0, [0, 0, 0])) is None
        # Shard 1 takes ~all the traffic for three windows.
        assert detector.observe(_snapshot(0, [5, 100, 5])) is None
        assert detector.observe(_snapshot(0, [10, 200, 10])) is None
        assert detector.observe(_snapshot(0, [15, 300, 15])) == 1

    def test_streak_resets_after_nomination(self):
        # With 2 shards, fair share is half the window, so factor 2
        # would demand 100% of traffic; 1.5 (75%) leaves headroom.
        detector = HotRangeDetector(factor=1.5, sustain=2, min_hits=10)
        detector.observe(_snapshot(0, [0, 0]))
        assert detector.observe(_snapshot(0, [1, 100])) is None
        assert detector.observe(_snapshot(0, [2, 200])) == 1
        # A fresh streak is required before the next nomination.
        assert detector.observe(_snapshot(0, [3, 300])) is None
        assert detector.observe(_snapshot(0, [4, 400])) == 1

    def test_epoch_change_resets_baseline(self):
        detector = HotRangeDetector(factor=2.0, sustain=2, min_hits=10)
        detector.observe(_snapshot(0, [0, 0]))
        assert detector.observe(_snapshot(0, [0, 100])) is None
        # The split landed: new epoch, new layout, counters restart.
        assert detector.observe(_snapshot(1, [0, 5, 5])) is None
        assert detector.observe(_snapshot(1, [0, 105, 10])) is None
        assert detector.observe(_snapshot(1, [0, 205, 15])) == 1

    def test_quiet_windows_break_the_streak(self):
        detector = HotRangeDetector(factor=1.5, sustain=2, min_hits=100)
        detector.observe(_snapshot(0, [0, 0]))
        assert detector.observe(_snapshot(0, [10, 1000])) is None
        # Window total below min_hits: skew over noise, streak dies.
        assert detector.observe(_snapshot(0, [11, 1010])) is None
        assert detector.observe(_snapshot(0, [20, 2000])) is None
        assert detector.observe(_snapshot(0, [30, 3000])) == 1

    def test_balanced_load_never_nominates(self):
        detector = HotRangeDetector(factor=2.0, sustain=1, min_hits=10)
        detector.observe(_snapshot(0, [0, 0, 0]))
        for step in range(1, 6):
            hits = [100 * step, 110 * step, 105 * step]
            assert detector.observe(_snapshot(0, hits)) is None

    def test_single_shard_never_nominates(self):
        detector = HotRangeDetector(factor=2.0, sustain=1, min_hits=1)
        detector.observe(_snapshot(0, [0]))
        assert detector.observe(_snapshot(0, [10_000])) is None

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="factor"):
            HotRangeDetector(factor=1.0)
        with pytest.raises(ValueError, match="sustain"):
            HotRangeDetector(sustain=0)
        with pytest.raises(ValueError, match="min_hits"):
            HotRangeDetector(min_hits=0)


class TestHarness:
    @pytest.fixture(scope="class")
    def server(self, full_index):
        with ReputationServer(QueryEngine(full_index)) as srv:
            srv.start()
            yield srv

    def _schedule(self, analysis, name, n, qps):
        mix = get_mix(name)
        ips, days = population_from_analysis(mix, analysis)
        generator = TrafficGenerator(mix, ips, days, seed=0)
        return mix, generator.schedule(n, qps)

    def test_run_answers_everything(self, analysis, server):
        mix, events = self._schedule(analysis, "steady", 600, 6000.0)
        harness = LoadHarness(*server.address, conns=2)
        report = harness.run(
            events, mix=mix.name, target_qps=6000.0
        )
        assert report.sent == 600
        assert report.ok == 600
        assert report.failed == 0
        assert report.point_latency["count"] > 0
        assert report.batch_latency["count"] > 0
        assert report.achieved_qps() > 0
        rendered = render_report(report)
        assert "failed=0" in rendered and "p99" in rendered

    def test_capture_matches_static_engine(
        self, analysis, full_index, server
    ):
        mix, events = self._schedule(analysis, "batch-heavy", 400, 8000.0)
        harness = LoadHarness(*server.address, conns=2, capture=True)
        report = harness.run(events, mix=mix.name)
        assert report.failed == 0
        assert len(harness.captured) == report.ok
        engine = QueryEngine(full_index)
        for ip, day, verdict in harness.captured:
            assert verdict == engine.query(ip, day).to_wire()

    def test_report_round_trips_through_json(self, analysis, server):
        mix, events = self._schedule(analysis, "steady", 100, 5000.0)
        report = LoadHarness(*server.address, conns=1).run(
            events, mix=mix.name, seed=3, target_qps=5000.0
        )
        decoded = json.loads(report.to_json())
        assert decoded["mix"] == "steady"
        assert decoded["seed"] == 3
        assert decoded["sent"] == 100
        assert decoded["failed"] == 0
        assert decoded["point_latency_s"]["count"] >= 0

    def test_dead_endpoint_counts_transport_errors(self, analysis):
        # A port nothing listens on: every query must land in the
        # transport-error ledger, never hang or raise out of run().
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()
        mix, events = self._schedule(analysis, "steady", 50, 5000.0)
        report = LoadHarness(host, port, conns=2, timeout=2.0).run(
            events, mix=mix.name
        )
        assert report.ok == 0
        assert report.transport_errors == report.sent == 50

    def test_empty_schedule_rejected(self, server):
        with pytest.raises(ValueError, match="empty schedule"):
            LoadHarness(*server.address).run([])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="connection"):
            LoadHarness("127.0.0.1", 1, conns=0)
        with pytest.raises(ValueError, match="window"):
            LoadHarness("127.0.0.1", 1, window=0)


class TestStormHookFromLog:
    @pytest.fixture(scope="class")
    def scenario_log(self, tmp_path_factory):
        from repro.adversary import (
            get_adversary,
            score_scenario,
            write_scenario_log,
        )

        score = score_scenario(get_adversary("slow-drip").build(2020))
        path = tmp_path_factory.mktemp("churn") / "source.log"
        return write_scenario_log(score, path)

    def test_replays_source_batches_on_storms(
        self, scenario_log, tmp_path
    ):
        from repro.loadgen import storm_hook_from_log
        from repro.stream import UpdateLogReader, UpdateLogWriter

        source_batches = UpdateLogReader(scenario_log).poll()
        target = tmp_path / "live.log"
        UpdateLogWriter(target, start_day=0)  # header-only live log
        storm, pending = storm_hook_from_log(scenario_log, target)
        assert pending == len(source_batches)
        for index in range(3):
            storm(index)
        storm(len(source_batches) + 5)  # beyond pending: a no-op
        replayed = UpdateLogReader(target).poll()
        assert replayed == source_batches[:3]

    def test_resumes_past_already_logged_batches(
        self, scenario_log, tmp_path
    ):
        from repro.loadgen import storm_hook_from_log
        from repro.stream import UpdateLogReader, UpdateLogWriter

        source_batches = UpdateLogReader(scenario_log).poll()
        target = tmp_path / "live.log"
        writer = UpdateLogWriter(target, start_day=0)
        for batch in source_batches[:4]:
            writer.append(batch)
        storm, pending = storm_hook_from_log(scenario_log, target)
        assert pending == len(source_batches) - 4
        storm(0)
        replayed = UpdateLogReader(target).poll()
        assert replayed == source_batches[:5]

    def test_start_day_mismatch_rejected(self, scenario_log, tmp_path):
        from repro.loadgen import storm_hook_from_log
        from repro.stream import UpdateLogWriter

        target = tmp_path / "live.log"
        UpdateLogWriter(target, start_day=7)
        with pytest.raises(ValueError, match="start"):
            storm_hook_from_log(scenario_log, target)


class TestLoadCli:
    def test_churn_source_requires_churn_log(self, capsys):
        code = main(
            [
                "load", "--port", "1",
                "--churn-source", "whatever.log",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--churn-source requires --churn-log" in err

    def test_bad_queries_is_error(self, capsys):
        assert main(["load", "--queries", "0", "--port", "1"]) == 2
        assert "--queries" in capsys.readouterr().err

    def test_bad_target_qps_is_error(self, capsys):
        assert main(["load", "--target-qps", "0", "--port", "1"]) == 2
        assert "--target-qps" in capsys.readouterr().err

    def test_bad_conns_is_error(self, capsys):
        assert main(["load", "--conns", "0", "--port", "1"]) == 2
        assert "--conns" in capsys.readouterr().err

    def test_bad_port_is_error(self, capsys):
        assert main(["load", "--port", "70000"]) == 2
        assert "port" in capsys.readouterr().err

    def test_unreachable_endpoint_is_error(self, capsys):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(
            [
                "load", "--port", str(port), "--queries", "20",
                "--target-qps", "5000",
            ]
        )
        assert code == 2
        assert "no queries succeeded" in capsys.readouterr().err

    def test_live_run_writes_report(
        self, full_index, tmp_path, capsys
    ):
        out = tmp_path / "report.json"
        with ReputationServer(QueryEngine(full_index)) as server:
            server.start()
            host, port = server.address
            code = main(
                [
                    "load", "--host", host, "--port", str(port),
                    "--mix", "steady", "--queries", "300",
                    "--target-qps", "6000", "--conns", "2",
                    "--out", str(out),
                ]
            )
        assert code == 0
        shown = capsys.readouterr().out
        assert "mix=steady" in shown and "failed=0" in shown
        decoded = json.loads(out.read_text())
        assert decoded["sent"] == 300
        assert decoded["failed"] == 0
