"""Tests for repro.net.asdb and repro.net.ports."""

import random

import pytest

from repro.net.asdb import ASDatabase, ASKind, ASRecord
from repro.net.ipv4 import Prefix, ip_to_int
from repro.net.ports import (
    BITTORRENT_COMMON_RANGE,
    EPHEMERAL_RANGE,
    PortAllocator,
    is_valid_port,
)


def P(text):
    return Prefix.from_text(text)


class TestASRecord:
    def test_valid(self):
        rec = ASRecord(asn=64500, name="x", prefixes=[P("1.0.0.0/16")])
        assert rec.address_count() == 65536

    def test_bad_asn(self):
        with pytest.raises(ValueError):
            ASRecord(asn=0, name="x")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            ASRecord(asn=1, name="x", kind="alien")


class TestASDatabase:
    def _db(self):
        db = ASDatabase()
        db.add(ASRecord(64500, "eye", ASKind.EYEBALL, "EU", [P("1.0.0.0/16")]))
        db.add(ASRecord(64501, "host", ASKind.HOSTING, "NA", [P("2.0.0.0/16")]))
        return db

    def test_lookup(self):
        db = self._db()
        assert db.asn_of(ip_to_int("1.0.5.5")) == 64500
        assert db.asn_of(ip_to_int("2.0.5.5")) == 64501
        assert db.asn_of(ip_to_int("9.9.9.9")) is None

    def test_record_of(self):
        db = self._db()
        rec = db.record_of(ip_to_int("1.0.0.1"))
        assert rec is not None and rec.name == "eye"

    def test_duplicate_asn_rejected(self):
        db = self._db()
        with pytest.raises(ValueError):
            db.add(ASRecord(64500, "dup"))

    def test_announce(self):
        db = self._db()
        db.announce(64500, P("3.0.0.0/24"))
        assert db.asn_of(ip_to_int("3.0.0.77")) == 64500

    def test_announce_unknown_asn(self):
        db = self._db()
        with pytest.raises(KeyError):
            db.announce(65000, P("3.0.0.0/24"))

    def test_group_by_asn(self):
        db = self._db()
        counts = db.group_by_asn(
            [ip_to_int("1.0.0.1"), ip_to_int("1.0.0.2"), ip_to_int("9.9.9.9")]
        )
        assert counts == {64500: 2, 0: 1}

    def test_iteration_sorted(self):
        db = self._db()
        assert [r.asn for r in db] == [64500, 64501]
        assert len(db) == 2
        assert 64500 in db


class TestPortAllocator:
    def test_allocate_unique(self):
        alloc = PortAllocator(random.Random(1), 1000, 1050)
        ports = {alloc.allocate() for _ in range(51)}
        assert len(ports) == 51
        assert all(1000 <= p <= 1050 for p in ports)

    def test_exhaustion(self):
        alloc = PortAllocator(random.Random(1), 1000, 1001)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_claim_and_release(self):
        alloc = PortAllocator(random.Random(1), 1000, 1010)
        assert alloc.claim(1005)
        assert not alloc.claim(1005)
        assert 1005 in alloc
        alloc.release(1005)
        assert 1005 not in alloc
        assert alloc.claim(1005)

    def test_release_unallocated_raises(self):
        alloc = PortAllocator(random.Random(1), 1000, 1010)
        with pytest.raises(KeyError):
            alloc.release(1000)

    def test_claim_out_of_range(self):
        alloc = PortAllocator(random.Random(1), 1000, 1010)
        assert not alloc.claim(999)
        assert not alloc.claim(1011)

    def test_bad_range(self):
        with pytest.raises(ValueError):
            PortAllocator(random.Random(1), 10, 5)
        with pytest.raises(ValueError):
            PortAllocator(random.Random(1), 0, 5)

    def test_counters(self):
        alloc = PortAllocator(random.Random(1), 1000, 1009)
        assert alloc.capacity == 10
        alloc.allocate()
        assert alloc.in_use == 1


class TestPortPredicates:
    def test_is_valid_port(self):
        assert is_valid_port(1)
        assert is_valid_port(65535)
        assert not is_valid_port(0)
        assert not is_valid_port(65536)
        assert not is_valid_port(-1)

    def test_ranges_sane(self):
        assert EPHEMERAL_RANGE[0] < EPHEMERAL_RANGE[1]
        assert BITTORRENT_COMMON_RANGE[0] >= 1024
