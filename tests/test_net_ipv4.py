"""Tests for repro.net.ipv4."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import (
    MAX_IPV4,
    Prefix,
    addresses_to_slash24s,
    covering_prefix,
    int_to_ip,
    ip_to_int,
    is_valid_ip_int,
    parse_ip_or_prefix,
    slash24_int,
    slash24_of,
)


class TestIpConversion:
    def test_parse_simple(self):
        assert ip_to_int("1.2.3.4") == 0x01020304

    def test_parse_zero(self):
        assert ip_to_int("0.0.0.0") == 0

    def test_parse_max(self):
        assert ip_to_int("255.255.255.255") == MAX_IPV4

    def test_format_simple(self):
        assert int_to_ip(0x01020304) == "1.2.3.4"

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3",
         "1.2.3.+4", " 1.2.3.4", "1.2.3.4 ", "01.2.3.4444"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    @pytest.mark.parametrize("bad", [-1, MAX_IPV4 + 1])
    def test_format_rejects(self, bad):
        with pytest.raises(ValueError):
            int_to_ip(bad)

    def test_is_valid(self):
        assert is_valid_ip_int(0)
        assert is_valid_ip_int(MAX_IPV4)
        assert not is_valid_ip_int(-1)
        assert not is_valid_ip_int(MAX_IPV4 + 1)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestPrefix:
    def test_from_text(self):
        p = Prefix.from_text("10.0.0.0/8")
        assert p.network == ip_to_int("10.0.0.0")
        assert p.length == 8

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix.from_text("10.0.0.5/24")

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_contains(self):
        p = Prefix.from_text("192.0.0.0/24")
        assert p.contains(ip_to_int("192.0.0.200"))
        assert not p.contains(ip_to_int("192.0.1.0"))

    def test_contains_prefix_nested(self):
        outer = Prefix.from_text("10.0.0.0/8")
        inner = Prefix.from_text("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_contains_prefix_self(self):
        p = Prefix.from_text("10.0.0.0/8")
        assert p.contains_prefix(p)

    def test_first_last_size(self):
        p = Prefix.from_text("1.2.3.0/24")
        assert p.first() == ip_to_int("1.2.3.0")
        assert p.last() == ip_to_int("1.2.3.255")
        assert p.size() == 256

    def test_zero_length_prefix(self):
        p = Prefix(0, 0)
        assert p.contains(0)
        assert p.contains(MAX_IPV4)
        assert p.size() == 1 << 32

    def test_slash32(self):
        p = Prefix(ip_to_int("9.9.9.9"), 32)
        assert p.size() == 1
        assert list(p.addresses()) == [ip_to_int("9.9.9.9")]

    def test_subprefixes(self):
        p = Prefix.from_text("10.0.0.0/22")
        subs = list(p.subprefixes(24))
        assert len(subs) == 4
        assert subs[0] == Prefix.from_text("10.0.0.0/24")
        assert subs[-1] == Prefix.from_text("10.0.3.0/24")

    def test_subprefixes_shorter_rejected(self):
        with pytest.raises(ValueError):
            list(Prefix.from_text("10.0.0.0/24").subprefixes(16))

    def test_ordering_and_str(self):
        a = Prefix.from_text("1.0.0.0/8")
        b = Prefix.from_text("2.0.0.0/8")
        assert a < b
        assert str(a) == "1.0.0.0/8"

    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=32),
    )
    def test_covering_prefix_contains(self, ip, length):
        prefix = covering_prefix(ip, length)
        assert prefix.contains(ip)
        assert prefix.length == length


class TestSlash24:
    def test_slash24_of(self):
        assert slash24_of(ip_to_int("1.2.3.77")) == Prefix.from_text("1.2.3.0/24")

    def test_slash24_int_matches(self):
        ip = ip_to_int("9.8.7.6")
        assert slash24_int(ip) == slash24_of(ip).network

    def test_addresses_to_slash24s_dedup(self):
        ips = [ip_to_int("1.2.3.4"), ip_to_int("1.2.3.200"), ip_to_int("1.2.4.1")]
        blocks = addresses_to_slash24s(ips)
        assert blocks == [
            Prefix.from_text("1.2.3.0/24"),
            Prefix.from_text("1.2.4.0/24"),
        ]


class TestParseIpOrPrefix:
    def test_bare_ip(self):
        assert parse_ip_or_prefix("4.4.4.4") == Prefix(ip_to_int("4.4.4.4"), 32)

    def test_cidr(self):
        assert parse_ip_or_prefix("10.1.0.0/16") == Prefix.from_text("10.1.0.0/16")

    def test_cidr_with_host_bits_normalised(self):
        assert parse_ip_or_prefix("10.1.2.3/16") == Prefix.from_text("10.1.0.0/16")

    def test_whitespace_tolerated(self):
        assert parse_ip_or_prefix("  8.8.8.8\n") == Prefix(ip_to_int("8.8.8.8"), 32)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_ip_or_prefix("10.0.0.0/xx")
