"""Tests for repro.net.prefixtrie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipv4 import MAX_IPV4, Prefix, covering_prefix, ip_to_int
from repro.net.prefixtrie import PrefixSet, PrefixTrie


def P(text):
    return Prefix.from_text(text)


class TestPrefixTrie:
    def test_empty_lookup(self):
        trie = PrefixTrie()
        assert trie.lookup(ip_to_int("1.2.3.4")) is None
        assert len(trie) == 0

    def test_insert_and_exact(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        assert trie.exact(P("10.0.0.0/8")) == "a"
        assert trie.exact(P("10.0.0.0/16")) is None
        assert len(trie) == 1

    def test_overwrite_same_prefix(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        trie.insert(P("10.0.0.0/8"), "b")
        assert trie.exact(P("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_longest_prefix_match(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "short")
        trie.insert(P("10.1.0.0/16"), "long")
        match = trie.lookup(ip_to_int("10.1.2.3"))
        assert match == (P("10.1.0.0/16"), "long")
        match = trie.lookup(ip_to_int("10.2.0.1"))
        assert match == (P("10.0.0.0/8"), "short")

    def test_lookup_value(self):
        trie = PrefixTrie()
        trie.insert(P("1.0.0.0/8"), 42)
        assert trie.lookup_value(ip_to_int("1.1.1.1")) == 42
        assert trie.lookup_value(ip_to_int("2.2.2.2")) is None

    def test_slash32_match(self):
        trie = PrefixTrie()
        ip = ip_to_int("7.7.7.7")
        trie.insert(Prefix(ip, 32), "host")
        assert trie.lookup(ip) == (Prefix(ip, 32), "host")
        assert trie.lookup(ip + 1) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie.lookup(ip_to_int("200.1.2.3")) == (Prefix(0, 0), "default")

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        assert trie.remove(P("10.0.0.0/8"))
        assert not trie.remove(P("10.0.0.0/8"))
        assert trie.lookup(ip_to_int("10.1.1.1")) is None
        assert len(trie) == 0

    def test_remove_keeps_other_entries(self):
        trie = PrefixTrie()
        trie.insert(P("10.0.0.0/8"), "a")
        trie.insert(P("10.1.0.0/16"), "b")
        trie.remove(P("10.0.0.0/8"))
        assert trie.lookup(ip_to_int("10.1.2.3")) == (P("10.1.0.0/16"), "b")

    def test_items_sorted(self):
        trie = PrefixTrie()
        trie.insert(P("20.0.0.0/8"), 2)
        trie.insert(P("10.0.0.0/8"), 1)
        trie.insert(P("10.0.0.0/16"), 3)
        prefixes = [p for p, _ in trie.items()]
        assert prefixes == [P("10.0.0.0/8"), P("10.0.0.0/16"), P("20.0.0.0/8")]

    def test_lookup_invalid_ip(self):
        trie = PrefixTrie()
        with pytest.raises(ValueError):
            trie.lookup(-5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=MAX_IPV4),
                st.integers(min_value=0, max_value=32),
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=0, max_value=MAX_IPV4),
    )
    def test_lpm_matches_bruteforce(self, raw_prefixes, probe):
        trie = PrefixTrie()
        prefixes = []
        for ip, length in raw_prefixes:
            prefix = covering_prefix(ip, length)
            trie.insert(prefix, str(prefix))
            prefixes.append(prefix)
        expected = None
        for prefix in prefixes:
            if prefix.contains(probe):
                if expected is None or prefix.length > expected.length:
                    expected = prefix
        got = trie.lookup(probe)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got[0] == expected


class TestPrefixSet:
    def test_membership(self):
        ps = PrefixSet()
        ps.add(P("10.0.0.0/24"))
        assert ps.contains_ip(ip_to_int("10.0.0.5"))
        assert not ps.contains_ip(ip_to_int("10.0.1.5"))
        assert P("10.0.0.0/24") in ps
        assert ip_to_int("10.0.0.5") in ps

    def test_init_from_iterable(self):
        ps = PrefixSet(iter([P("1.0.0.0/8"), P("2.0.0.0/8")]))
        assert len(ps) == 2
        assert sorted(ps.prefixes()) == [P("1.0.0.0/8"), P("2.0.0.0/8")]

    def test_discard(self):
        ps = PrefixSet()
        ps.add(P("10.0.0.0/24"))
        assert ps.discard(P("10.0.0.0/24"))
        assert not ps.discard(P("10.0.0.0/24"))
        assert not ps.contains_ip(ip_to_int("10.0.0.5"))

    def test_contains_rejects_other_types(self):
        ps = PrefixSet()
        with pytest.raises(TypeError):
            "10.0.0.1" in ps

    def test_nested_membership(self):
        ps = PrefixSet()
        ps.add(P("10.0.0.0/8"))
        assert ps.contains_ip(ip_to_int("10.200.1.1"))
        assert not ps.contains_exact(P("10.0.0.0/16"))


class TestRangeBoundaries:
    """Edge-of-range behaviour the cluster partitioner leans on: a /24
    must cover exactly its 256 addresses — first and last included,
    neighbours excluded — or restricted shard slices would disagree
    about dynamic-block membership at shard boundaries."""

    def test_first_and_last_ip_of_slash24(self):
        ps = PrefixSet([P("192.0.2.0/24")])
        assert ps.contains_ip(ip_to_int("192.0.2.0"))
        assert ps.contains_ip(ip_to_int("192.0.2.255"))
        assert not ps.contains_ip(ip_to_int("192.0.1.255"))
        assert not ps.contains_ip(ip_to_int("192.0.3.0"))

    def test_prefix_first_last_bracket_membership(self):
        prefix = P("198.51.100.0/24")
        ps = PrefixSet([prefix])
        assert prefix.first() == ip_to_int("198.51.100.0")
        assert prefix.last() == ip_to_int("198.51.100.255")
        assert ps.contains_ip(prefix.first())
        assert ps.contains_ip(prefix.last())
        assert not ps.contains_ip(prefix.first() - 1)
        assert not ps.contains_ip(prefix.last() + 1)

    def test_adjacent_slash24s_do_not_bleed(self):
        left, right = P("10.0.0.0/24"), P("10.0.1.0/24")
        only_left = PrefixSet([left])
        only_right = PrefixSet([right])
        boundary = ip_to_int("10.0.0.255")
        assert only_left.contains_ip(boundary)
        assert not only_right.contains_ip(boundary)
        assert only_right.contains_ip(boundary + 1)
        assert not only_left.contains_ip(boundary + 1)

    def test_adjacent_slash24s_at_shard_boundaries(self):
        from repro.cluster import PartitionMap

        partition = PartitionMap(7)
        for shard_range in partition.ranges[1:]:
            below = Prefix((shard_range.lo >> 8 << 8) - 256, 24)
            above = Prefix(shard_range.lo, 24)
            trie = PrefixTrie()
            trie.insert(below, "below")
            trie.insert(above, "above")
            # The last IP below the cut and the first IP above it
            # resolve to different /24s — and to different shards.
            assert trie.lookup_value(shard_range.lo - 1) == "below"
            assert trie.lookup_value(shard_range.lo) == "above"
            assert partition.shard_of(shard_range.lo - 1) != (
                partition.shard_of(shard_range.lo)
            )
            # Every address of each /24 stays on one shard.
            for prefix in (below, above):
                owners = {
                    partition.shard_of(prefix.first()),
                    partition.shard_of(prefix.last()),
                }
                assert len(owners) == 1

    def test_covers_at_extremes_of_space(self):
        ps = PrefixSet([Prefix(0, 24), Prefix(MAX_IPV4 - 255, 24)])
        assert ps.contains_ip(0)
        assert ps.contains_ip(255)
        assert not ps.contains_ip(256)
        assert ps.contains_ip(MAX_IPV4)
        assert ps.contains_ip(MAX_IPV4 - 255)
        assert not ps.contains_ip(MAX_IPV4 - 256)
