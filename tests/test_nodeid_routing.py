"""Tests for node ids and the Kademlia routing table."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.krpc import NodeInfo
from repro.bittorrent.nodeid import (
    NODE_ID_BYTES,
    common_prefix_bits,
    generate_node_id,
    node_id_hex,
    xor_distance,
)
from repro.bittorrent.routing import BUCKET_SIZE, RoutingTable
from repro.net.ipv4 import ip_to_int


class TestNodeId:
    def test_width(self):
        node_id = generate_node_id(ip_to_int("192.168.1.2"), random.Random(1))
        assert len(node_id) == NODE_ID_BYTES

    def test_regeneration_differs(self):
        rng = random.Random(1)
        ip = ip_to_int("192.168.1.2")
        assert generate_node_id(ip, rng) != generate_node_id(ip, rng)

    def test_bad_ip(self):
        with pytest.raises(ValueError):
            generate_node_id(-1, random.Random(1))

    def test_hex(self):
        assert node_id_hex(bytes(20)) == "00" * 20

    def test_hex_rejects_short(self):
        with pytest.raises(ValueError):
            node_id_hex(b"xx")


class TestXorMetric:
    def test_identity(self):
        a = bytes(20)
        assert xor_distance(a, a) == 0
        assert common_prefix_bits(a, a) == 160

    def test_symmetry(self):
        a = bytes([1] * 20)
        b = bytes([2] * 20)
        assert xor_distance(a, b) == xor_distance(b, a)

    def test_first_bit_differs(self):
        a = bytes(20)
        b = bytes([0x80]) + bytes(19)
        assert common_prefix_bits(a, b) == 0

    def test_last_bit_differs(self):
        a = bytes(20)
        b = bytes(19) + bytes([1])
        assert common_prefix_bits(a, b) == 159

    @settings(max_examples=50, deadline=None)
    @given(
        st.binary(min_size=20, max_size=20),
        st.binary(min_size=20, max_size=20),
        st.binary(min_size=20, max_size=20),
    )
    def test_triangle_inequality(self, a, b, c):
        # XOR metric satisfies d(a,c) <= d(a,b) + d(b,c).
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)


def make_contact(seed: int) -> NodeInfo:
    rng = random.Random(seed)
    node_id = bytes(rng.getrandbits(8) for _ in range(20))
    return NodeInfo(node_id, rng.getrandbits(32), rng.randint(1, 65535))


class TestRoutingTable:
    def test_insert_and_contains(self):
        table = RoutingTable(bytes(20))
        contact = make_contact(1)
        assert table.insert(contact)
        assert table.contains(contact.node_id)
        assert len(table) == 1

    def test_own_id_rejected(self):
        own = bytes(20)
        table = RoutingTable(own)
        assert not table.insert(NodeInfo(own, 1, 1))

    def test_update_in_place(self):
        table = RoutingTable(bytes(20))
        contact = make_contact(1)
        table.insert(contact)
        updated = NodeInfo(contact.node_id, contact.ip, contact.port + 1)
        assert table.insert(updated)
        assert len(table) == 1
        assert list(table)[0].port == contact.port + 1

    def test_bucket_overflow_drops_newcomer(self):
        own = bytes(20)
        table = RoutingTable(own, bucket_size=2)
        # Contacts sharing prefix length 0 (first bit = 1).
        def contact(n):
            node_id = bytes([0x80, n]) + bytes(18)
            return NodeInfo(node_id, n + 1, 1000 + n)

        assert table.insert(contact(1))
        assert table.insert(contact(2))
        assert not table.insert(contact(3))
        assert len(table) == 2

    def test_remove(self):
        table = RoutingTable(bytes(20))
        contact = make_contact(5)
        table.insert(contact)
        assert table.remove(contact.node_id)
        assert not table.remove(contact.node_id)
        assert len(table) == 0

    def test_closest_ordering(self):
        own = bytes(20)
        table = RoutingTable(own, bucket_size=32)
        contacts = [make_contact(i) for i in range(40)]
        for c in contacts:
            table.insert(c)
        target = make_contact(99).node_id
        closest = table.closest(target, 10)
        dists = [xor_distance(c.node_id, target) for c in closest]
        assert dists == sorted(dists)
        stored = list(table)
        best = min(xor_distance(c.node_id, target) for c in stored)
        assert dists[0] == best

    def test_closest_respects_count(self):
        table = RoutingTable(bytes(20), bucket_size=64)
        for i in range(30):
            table.insert(make_contact(i))
        assert len(table.closest(make_contact(1).node_id, 8)) == 8

    def test_closest_bad_target(self):
        table = RoutingTable(bytes(20))
        with pytest.raises(ValueError):
            table.closest(b"short")

    def test_random_contacts(self):
        table = RoutingTable(bytes(20), bucket_size=64)
        for i in range(20):
            table.insert(make_contact(i))
        sample = table.random_contacts(random.Random(0), 5)
        assert len(sample) == 5
        small = table.random_contacts(random.Random(0), 100)
        assert len(small) == len(table)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RoutingTable(b"short")
        with pytest.raises(ValueError):
            RoutingTable(bytes(20), bucket_size=0)

    def test_default_bucket_size_is_eight(self):
        assert BUCKET_SIZE == 8
