"""Determinism contract of the parallel runner.

The whole point of ``repro.experiments.parallel`` is that the worker
count is *not* an experimental parameter: any ``workers`` value must
produce bit-identical results. These tests pin that contract at every
layer — the shard mapper itself, each sharded stage, and the full run.
"""

import random

import pytest

from repro.baselines.icmp_census import CensusConfig, run_census
from repro.experiments.parallel import (
    available_parallelism,
    map_shards,
    resolve_workers,
)
from repro.experiments.runner import RunConfig, run_full, sweep_headlines
from repro.internet.scenario import ScenarioConfig, build_scenario
from repro.ripe.pipeline import run_pipeline


def _square(shared, item):
    return item * item


def _with_shared(shared, item):
    return (shared, item)


def _nested(shared, item):
    # Nested map_shards inside a shard must degrade to serial, not
    # fork grandchildren.
    return sum(map_shards(_square, range(item + 1), workers=4))


class TestMapShards:
    def test_serial_is_plain_map(self):
        assert map_shards(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_parallel_preserves_input_order(self):
        items = list(range(20))
        assert map_shards(_square, items, workers=4) == [
            n * n for n in items
        ]

    def test_shared_context_reaches_every_shard(self):
        out = map_shards(_with_shared, [1, 2], workers=2, shared="ctx")
        assert out == [("ctx", 1), ("ctx", 2)]

    def test_empty_items(self):
        assert map_shards(_square, [], workers=4) == []

    def test_nested_call_runs_serially(self):
        assert map_shards(_nested, [2, 3], workers=2) == [5, 14]

    def test_workers_clamped_to_item_count(self):
        # More workers than items must not break anything.
        assert map_shards(_square, [7], workers=32) == [49]

    def test_resolve_workers(self):
        assert resolve_workers(None) == available_parallelism()
        assert resolve_workers(0) == available_parallelism()
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            resolve_workers(2.5)


class TestStageInvariance:
    """Each sharded stage is invariant to the worker count."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(ScenarioConfig.small(seed=2020))

    def test_census_worker_invariant(self, scenario):
        serial = run_census(
            scenario.truth, CensusConfig(), random.Random(11), workers=1
        )
        sharded = run_census(
            scenario.truth, CensusConfig(), random.Random(11), workers=4
        )
        assert serial.probes_sent == sharded.probes_sent
        assert serial.metrics == sharded.metrics

    def test_pipeline_worker_invariant(self, scenario):
        serial = run_pipeline(
            scenario.atlas_log, scenario.truth.asdb, workers=1
        )
        sharded = run_pipeline(
            scenario.atlas_log, scenario.truth.asdb, workers=4
        )
        assert serial.funnel_counts() == sharded.funnel_counts()
        assert serial.allocation_knee == sharded.allocation_knee
        assert serial.dynamic_prefixes == sharded.dynamic_prefixes
        assert serial.all_probes == sharded.all_probes


class TestFullRunInvariance:
    @pytest.mark.parametrize("seed", [2019, 2020, 2021])
    def test_headline_identical_across_worker_counts(self, seed):
        serial = run_full(RunConfig.small(seed), workers=1)
        sharded = run_full(RunConfig.small(seed), workers=4)
        assert serial.report == sharded.report
        assert serial.report.render() == sharded.report.render()

    def test_sweep_matches_individual_runs(self):
        seeds = (2019, 2021)
        swept = sweep_headlines("small", seeds, workers=2)
        assert [seed for seed, _ in swept] == list(seeds)
        for seed, report in swept:
            assert report == run_full(RunConfig.small(seed)).report
