"""PartitionMap at split boundaries: non-uniform range sets, the
single-/24 floor, wire roundtrips, and shard_of agreement across a
split for every boundary address.

The split invariants are the cluster's correctness story in miniature:
a split must change *routing* without changing *coverage* — every
address keeps exactly one owner, /24s never straddle shards, and a map
serialised mid-growth rebuilds identically on the other side of the
wire.
"""

import pytest

from repro.cluster import MAX_SHARDS, PartitionMap, ShardRange
from repro.net.ipv4 import MAX_IPV4


def boundary_ips(partition):
    """Every range edge plus its /24 neighbours (clamped): the
    addresses where an off-by-one in shard_of would show."""
    ips = set()
    for shard_range in partition.ranges:
        for edge in (shard_range.lo, shard_range.hi):
            for ip in (edge - 1, edge, edge + 1, edge - 256, edge + 256):
                if 0 <= ip <= MAX_IPV4:
                    ips.add(ip)
    return sorted(ips)


class TestFromRanges:
    def test_uniform_map_roundtrips_through_its_own_ranges(self):
        for shards in (1, 2, 3, 7, 64):
            uniform = PartitionMap(shards)
            rebuilt = PartitionMap.from_ranges(uniform.ranges)
            assert rebuilt == uniform
            assert len(rebuilt) == shards

    def test_non_uniform_ranges_route_correctly(self):
        mid = 1 << 24  # 1.0.0.0 — a deliberately lopsided cut
        partition = PartitionMap.from_ranges(
            [ShardRange(0, mid - 1), ShardRange(mid, MAX_IPV4)]
        )
        assert partition.shard_of(0) == 0
        assert partition.shard_of(mid - 1) == 0
        assert partition.shard_of(mid) == 1
        assert partition.shard_of(MAX_IPV4) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one range"):
            PartitionMap.from_ranges([])

    def test_rejects_gap(self):
        with pytest.raises(ValueError, match="contiguous"):
            PartitionMap.from_ranges(
                [
                    ShardRange(0, (1 << 16) - 1),
                    ShardRange(2 << 16, MAX_IPV4),
                ]
            )

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="contiguous"):
            PartitionMap.from_ranges(
                [
                    ShardRange(0, (2 << 16) - 1),
                    ShardRange(1 << 16, MAX_IPV4),
                ]
            )

    def test_rejects_partial_coverage(self):
        with pytest.raises(ValueError, match="must start"):
            PartitionMap.from_ranges([ShardRange(1 << 8, MAX_IPV4)])
        with pytest.raises(ValueError, match="must end"):
            PartitionMap.from_ranges([ShardRange(0, (1 << 16) - 1)])

    def test_rejects_non_shardrange_rows(self):
        with pytest.raises(ValueError, match="not a ShardRange"):
            PartitionMap.from_ranges([(0, MAX_IPV4)])

    def test_misaligned_range_rejected_at_construction(self):
        # /24 alignment is ShardRange's own invariant; from_ranges
        # can never even be handed a misaligned row.
        with pytest.raises(ValueError, match="not /24-aligned"):
            ShardRange(1, MAX_IPV4)
        with pytest.raises(ValueError, match="not /24-aligned"):
            ShardRange(0, MAX_IPV4 - 1)


class TestSplit:
    def test_split_halves_at_a_slash24_boundary(self):
        partition = PartitionMap(3)
        grown = partition.split(1)
        assert len(grown) == 4
        old = partition.range_of(1)
        left, right = grown.range_of(1), grown.range_of(2)
        assert left.lo == old.lo and right.hi == old.hi
        assert right.lo == left.hi + 1
        assert left.lo & 0xFF == 0 and right.lo & 0xFF == 0
        # Halves are balanced to within one /24.
        assert abs(left.size() - right.size()) <= 256

    def test_split_preserves_other_shards(self):
        partition = PartitionMap(4)
        grown = partition.split(2)
        assert grown.range_of(0) == partition.range_of(0)
        assert grown.range_of(1) == partition.range_of(1)
        assert grown.range_of(4) == partition.range_of(3)

    def test_shard_of_agreement_across_a_split_at_every_boundary(self):
        partition = PartitionMap(3)
        grown = partition.split(1)
        for ip in boundary_ips(partition) + boundary_ips(grown):
            before = partition.shard_of(ip)
            after = grown.shard_of(ip)
            # The owning *range* must agree: the address stays inside
            # whatever slice of the old shard now owns it.
            assert partition.range_of(before).contains(ip)
            assert grown.range_of(after).contains(ip)
            old_range = partition.range_of(before)
            new_range = grown.range_of(after)
            assert new_range.lo >= old_range.lo
            assert new_range.hi <= old_range.hi

    def test_repeated_splits_keep_every_invariant(self):
        partition = PartitionMap(2)
        for _ in range(8):
            partition = partition.split(0)
            ranges = partition.ranges
            assert ranges[0].lo == 0
            assert ranges[-1].hi == MAX_IPV4
            for left, right in zip(ranges, ranges[1:]):
                assert right.lo == left.hi + 1
            for shard_range in ranges:
                assert shard_range.lo & 0xFF == 0
                assert shard_range.hi & 0xFF == 0xFF

    def test_single_slash24_cannot_split(self):
        # Shrink shard 0 down to one /24 by splitting it repeatedly.
        partition = PartitionMap(1)
        while partition.range_of(0).size() > 256:
            partition = partition.split(0)
        assert partition.range_of(0).size() == 256
        with pytest.raises(ValueError, match="single /24"):
            partition.split(0)
        # The rest of the map is still splittable (the tail shard
        # holds nearly the whole space).
        last = len(partition) - 1
        assert len(partition.split(last)) == len(partition) + 1

    def test_split_out_of_range_shard_rejected(self):
        partition = PartitionMap(3)
        with pytest.raises(ValueError, match="no shard"):
            partition.split(3)
        with pytest.raises(ValueError, match="no shard"):
            partition.split(-1)

    def test_split_respects_shard_cap(self):
        ranges = PartitionMap(MAX_SHARDS).ranges
        full = PartitionMap.from_ranges(ranges)
        with pytest.raises(ValueError, match="cap"):
            full.split(0)


class TestWireRoundtrip:
    def test_split_to_wire_from_wire_equality(self):
        partition = PartitionMap(3).split(1).split(0).split(3)
        rebuilt = PartitionMap.from_wire(partition.to_wire())
        assert rebuilt == partition
        assert rebuilt.ranges == partition.ranges
        for ip in boundary_ips(partition):
            assert rebuilt.shard_of(ip) == partition.shard_of(ip)

    def test_from_wire_rejects_malformed_payloads(self):
        good = PartitionMap(2).to_wire()
        with pytest.raises(ValueError):
            PartitionMap.from_wire(None)
        with pytest.raises(ValueError):
            PartitionMap.from_wire({"shards": 2})
        with pytest.raises(ValueError, match="declares"):
            PartitionMap.from_wire(
                {"shards": 3, "ranges": good["ranges"]}
            )
        with pytest.raises(ValueError):
            PartitionMap.from_wire(
                {"shards": 1, "ranges": [[0, 12345]]}
            )
