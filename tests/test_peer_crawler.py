"""Integration tests: simulated peers, overlay, crawler, NAT detection."""

import pytest

from repro.bittorrent.crawler import CrawlerConfig, DhtCrawler
from repro.bittorrent.crawllog import QUERY_GET_NODES, QUERY_PING
from repro.bittorrent.krpc import (
    GetNodesQuery,
    GetNodesResponse,
    PingQuery,
    PingResponse,
    decode_message,
    encode_message,
)
from repro.bittorrent.peer import SimulatedPeer
from repro.bittorrent.swarm import PeerSpec, build_overlay
from repro.natdetect import detect_by_node_ids, detect_by_ports, detect_nated
from repro.net.ipv4 import ip_to_int
from repro.net.prefixtrie import PrefixSet
from repro.net.ipv4 import Prefix
from repro.sim.clock import HOUR
from repro.sim.events import Scheduler
from repro.sim.nat import HostStack, NatBehaviour, NatGateway
from repro.sim.rng import RngHub
from repro.sim.udp import Endpoint, UdpFabric


@pytest.fixture()
def world():
    sched = Scheduler()
    hub = RngHub(21)
    fabric = UdpFabric(sched, hub, loss_rate=0.0)
    return sched, fabric, hub


class TestSimulatedPeer:
    def test_answers_ping(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t")
        stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip_to_int("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        probe = HostStack(fabric, ip_to_int("10.0.0.9"), rng).open_socket()
        got = []
        probe.on_receive(lambda d: got.append(decode_message(d.payload)))
        probe.send(peer.endpoint, encode_message(PingQuery(b"\x00\x07", bytes(20))))
        sched.run()
        assert len(got) == 1
        assert isinstance(got[0], PingResponse)
        assert got[0].responder_id == peer.node_id
        assert got[0].txn == b"\x00\x07"

    def test_answers_get_nodes_with_contacts(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t")
        stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip_to_int("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        other_stack = HostStack(fabric, ip_to_int("10.0.0.2"), rng)
        other = SimulatedPeer("q", ip_to_int("10.0.0.2"), other_stack.open_socket, rng)
        other.start()
        peer.learn(other.contact_info())
        probe = HostStack(fabric, ip_to_int("10.0.0.9"), rng).open_socket()
        got = []
        probe.on_receive(lambda d: got.append(decode_message(d.payload)))
        query = GetNodesQuery(b"\x00\x01", bytes(20), bytes(20))
        probe.send(peer.endpoint, encode_message(query))
        sched.run()
        assert isinstance(got[0], GetNodesResponse)
        assert any(n.ip == ip_to_int("10.0.0.2") for n in got[0].nodes)

    def test_learns_querier(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t")
        stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip_to_int("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        probe = HostStack(fabric, ip_to_int("10.0.0.9"), rng).open_socket()
        sender_id = bytes([7]) * 20
        probe.send(
            peer.endpoint,
            encode_message(GetNodesQuery(b"\x00\x01", sender_id, bytes(20))),
        )
        sched.run()
        assert peer.table.contains(sender_id)

    def test_restart_changes_port_and_id(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t")
        stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip_to_int("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        old_port = peer.endpoint.port
        old_id = peer.node_id
        peer.restart()
        assert peer.endpoint.port != old_port
        assert peer.node_id != old_id
        assert peer.restarts == 1
        assert peer.online

    def test_garbage_gets_error_reply(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t")
        stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip_to_int("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        probe = HostStack(fabric, ip_to_int("10.0.0.9"), rng).open_socket()
        got = []
        probe.on_receive(lambda d: got.append(d.payload))
        probe.send(peer.endpoint, b"\xff\xfegarbage")
        sched.run()
        assert len(got) == 1  # error reply, still valid bencode
        decode_message(got[0])

    def test_double_start_rejected(self, world):
        _, fabric, hub = world
        rng = hub.stream("t")
        stack = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        peer = SimulatedPeer("p", ip_to_int("10.0.0.1"), stack.open_socket, rng)
        peer.start()
        with pytest.raises(RuntimeError):
            peer.start()


def build_world(seed=42, loss=0.0, n_public=12, nat_users=3, restricted_users=0):
    sched = Scheduler()
    hub = RngHub(seed)
    fabric = UdpFabric(sched, hub, loss_rate=loss)
    rng = hub.stream("t")
    specs = []
    for i in range(n_public):
        ip = ip_to_int(f"10.0.{i}.1")
        stack = HostStack(fabric, ip, rng)
        specs.append(PeerSpec(f"pub{i}", ip, stack.open_socket))
    gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
    for j in range(nat_users):
        specs.append(
            PeerSpec(
                f"nat{j}",
                ip_to_int(f"192.168.0.{j + 2}"),
                lambda gw=gw: gw.open_socket(behaviour=NatBehaviour.FULL_CONE),
            )
        )
    for j in range(restricted_users):
        specs.append(
            PeerSpec(
                f"natr{j}",
                ip_to_int(f"192.168.1.{j + 2}"),
                lambda gw=gw: gw.open_socket(),
            )
        )
    bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
    overlay = build_overlay(fabric, specs, bstack, rng)
    return sched, fabric, hub, overlay


class TestCrawler:
    def test_discovers_all_public_peers(self):
        sched, fabric, hub, overlay = build_world()
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=2 * HOUR),
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(3 * HOUR)
        discovered = crawler.discovered_addresses()
        # 12 public peers + 1 NAT IP + bootstrap; the crawler can also
        # re-discover itself via tables that learned it from queries.
        for i in range(12):
            assert ip_to_int(f"10.0.{i}.1") in discovered
        assert ip_to_int("20.0.0.1") in discovered
        assert ip_to_int("30.0.0.1") in discovered

    def test_detects_nat_ip_as_multiport(self):
        sched, fabric, hub, overlay = build_world(nat_users=4)
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=3 * HOUR),
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(4 * HOUR)
        assert ip_to_int("20.0.0.1") in crawler.multiport_ips
        result = detect_nated(crawler.log)
        assert result.users_behind(ip_to_int("20.0.0.1")) == 4

    def test_restricted_nat_users_invisible_to_detection(self):
        sched, fabric, hub, overlay = build_world(nat_users=0, restricted_users=3)
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=3 * HOUR),
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(4 * HOUR)
        result = detect_nated(crawler.log)
        assert ip_to_int("20.0.0.1") not in result.nated_ips()

    def test_allowed_space_restriction(self):
        sched, fabric, hub, overlay = build_world()
        allowed = PrefixSet(iter([Prefix.from_text("10.0.0.0/16")]))
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=2 * HOUR, allowed_space=allowed),
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(3 * HOUR)
        discovered = crawler.discovered_addresses()
        # NAT at 20.0.0.1 is outside the allowed space; bootstrap was
        # force-seeded and is exempt.
        assert ip_to_int("20.0.0.1") not in discovered
        assert any(ip >> 16 == ip_to_int("10.0.0.0") >> 16 for ip in discovered)

    def test_cooldown_respected(self):
        sched, fabric, hub, overlay = build_world(nat_users=2)
        config = CrawlerConfig(duration=4 * HOUR)
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            config,
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(5 * HOUR)
        nat_ip = ip_to_int("20.0.0.1")
        contacts = sorted(
            r.time for r in crawler.log.sent() if r.dst_ip == nat_ip
        )
        # Group into bursts (all ports of one IP are pinged together);
        # distinct bursts must be >= cooldown apart.
        bursts = []
        for t in contacts:
            if not bursts or t - bursts[-1] > 60:
                bursts.append(t)
        gaps = [b - a for a, b in zip(bursts, bursts[1:])]
        assert all(gap >= config.contact_cooldown - 1e-6 for gap in gaps)

    def test_log_contains_both_kinds(self):
        sched, fabric, hub, overlay = build_world(nat_users=2)
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=3 * HOUR),
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(4 * HOUR)
        kinds = {r.kind for r in crawler.log.sent()}
        assert kinds == {QUERY_GET_NODES, QUERY_PING}
        assert crawler.stats.ping_response_rate() > 0.9  # zero loss

    def test_start_requires_bootstrap(self):
        sched, fabric, hub, overlay = build_world()
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.3"), hub.stream("c")).open_socket(),
            hub.stream("c"),
        )
        with pytest.raises(ValueError):
            crawler.start([])

    def test_double_start_rejected(self):
        sched, fabric, hub, overlay = build_world()
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.3"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=1 * HOUR),
        )
        crawler.start([overlay.bootstrap_endpoint])
        with pytest.raises(RuntimeError):
            crawler.start([overlay.bootstrap_endpoint])


class TestChurnAndAblations:
    def test_port_churn_fools_naive_rules_not_verified(self):
        sched, fabric, hub, overlay = build_world(seed=7, n_public=25, nat_users=3)
        overlay.schedule_churn(
            sched, duration=3 * HOUR, restart_fraction=0.4, depart_fraction=0.0
        )
        crawler = DhtCrawler(
            sched,
            HostStack(fabric, ip_to_int("30.0.0.2"), hub.stream("c")).open_socket(),
            hub.stream("c"),
            CrawlerConfig(duration=8 * HOUR, rewalk_interval=1 * HOUR),
        )
        crawler.start([overlay.bootstrap_endpoint])
        sched.run_until(9 * HOUR)
        verified = detect_nated(crawler.log).nated_ips()
        by_ports = detect_by_ports(crawler.log).nated_ips()
        by_ids = detect_by_node_ids(crawler.log).nated_ips()
        nat_ip = ip_to_int("20.0.0.1")
        assert verified == {nat_ip}
        # The naive rules must flag at least one churned public host.
        assert len(by_ports - {nat_ip}) > 0
        assert len(by_ids - {nat_ip}) > 0


class TestNatSocketFactoryHelper:
    def test_reachable_factory_full_cone(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t2")
        from repro.bittorrent.peer import make_nat_socket_factory
        from repro.sim.nat import NatGateway

        gw = NatGateway(fabric, ip_to_int("20.0.9.1"), rng)
        factory = make_nat_socket_factory(gw, reachable=True, rng=rng)
        sock = factory()
        got = []
        sock.on_receive(got.append)
        stranger = HostStack(fabric, ip_to_int("10.8.8.8"), rng).open_socket()
        stranger.send(sock.endpoint, b"ping")
        sched.run()
        assert len(got) == 1

    def test_unreachable_factory_restricted(self, world):
        sched, fabric, hub = world
        rng = hub.stream("t3")
        from repro.bittorrent.peer import make_nat_socket_factory
        from repro.sim.nat import NatGateway

        gw = NatGateway(fabric, ip_to_int("20.0.9.2"), rng)
        factory = make_nat_socket_factory(gw, reachable=False, rng=rng)
        sock = factory()
        got = []
        sock.on_receive(got.append)
        stranger = HostStack(fabric, ip_to_int("10.8.8.9"), rng).open_socket()
        stranger.send(sock.endpoint, b"ping")
        sched.run()
        assert got == []
