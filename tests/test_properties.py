"""Cross-module property-based tests (hypothesis).

These pin down the invariants the analyses rely on, over randomized
inputs rather than fixtures.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocklists.timeline import Listing, ListingStore
from repro.internet.dhcp import DhcpPool, LineChurnSpec
from repro.net.ipv4 import MAX_IPV4, Prefix, covering_prefix
from repro.ripe.kneedle import allocation_threshold


class TestPrefixProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=8, max_value=24),
        st.integers(min_value=24, max_value=28),
    )
    def test_subprefixes_tile_exactly(self, ip, outer_len, inner_len):
        outer = covering_prefix(ip, outer_len)
        if inner_len < outer_len:
            return
        subs = list(outer.subprefixes(inner_len))
        # Tiles are disjoint, ordered, and cover exactly the parent.
        assert len(subs) == 1 << (inner_len - outer_len)
        assert subs[0].first() == outer.first()
        assert subs[-1].last() == outer.last()
        for a, b in zip(subs, subs[1:]):
            assert a.last() + 1 == b.first()

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=MAX_IPV4),
        st.integers(min_value=0, max_value=32),
    )
    def test_covering_prefix_is_tightest(self, ip, length):
        prefix = covering_prefix(ip, length)
        assert prefix.contains(ip)
        if length < 32:
            narrower = covering_prefix(ip, length + 1)
            assert prefix.contains_prefix(narrower)


class TestListingProperties:
    listings = st.builds(
        Listing,
        list_id=st.sampled_from(["a", "b"]),
        ip=st.integers(min_value=1, max_value=50),
        first_day=st.integers(min_value=0, max_value=40),
        last_day=st.integers(min_value=40, max_value=90),
    )

    @settings(max_examples=80, deadline=None)
    @given(
        listings,
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=50, max_value=100),
    )
    def test_observed_bounded_by_duration(self, listing, w_start, w_end):
        windows = [(w_start, w_end)]
        observed = listing.observed_days(windows)
        assert 0 <= observed <= listing.duration_days()
        assert listing.max_observed_run(windows) <= observed

    @settings(max_examples=40, deadline=None)
    @given(st.lists(listings, max_size=20))
    def test_store_snapshot_consistent_with_activity(self, items):
        store = ListingStore(items)
        for day in (0, 25, 50, 75):
            for list_id in store.list_ids():
                snapshot = store.snapshot(list_id, day)
                expected = {
                    l.ip
                    for l in store.listings_of_list(list_id)
                    if l.active_on(day)
                }
                assert snapshot == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(listings, max_size=20))
    def test_observed_store_is_subset(self, items):
        store = ListingStore(items)
        windows = [(10, 30)]
        observed = store.observed(windows)
        assert observed.all_ips() <= store.all_ips()
        assert len(observed) <= len(store)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(listings, max_size=25),
        st.integers(min_value=0, max_value=95),
    )
    def test_active_on_matches_snapshot_view(self, items, day):
        """The per-IP interval query is the exact dual of the per-list
        snapshot view: ``ip`` appears in ``snapshot(list, day)`` iff
        ``listings_active_on(ip, day)`` names that list."""
        store = ListingStore(items)
        for ip in store.all_ips() | {0}:  # 0: never-listed probe
            active = store.listings_active_on(ip, day)
            # Every returned listing really covers (ip, day)...
            for listing in active:
                assert listing.ip == ip
                assert listing.first_day <= day <= listing.last_day
            # ...and the listing list-ids equal the snapshot dual.
            assert {l.list_id for l in active} == {
                list_id
                for list_id in store.list_ids()
                if ip in store.snapshot(list_id, day)
            }
            # Ordered by (list_id, first_day) as documented.
            keys = [(l.list_id, l.first_day) for l in active]
            assert keys == sorted(keys)


class TestDhcpProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=5, max_value=40),
        st.floats(min_value=0.5, max_value=20.0),
    )
    def test_exclusivity_and_containment(self, seed, n_lines, mean_days):
        pool = DhcpPool("p", 1, [Prefix(0x0B000000, 24)])
        specs = [LineChurnSpec(f"l{i}", mean_days) for i in range(n_lines)]
        pool.simulate(specs, 60.0, random.Random(seed))
        valid = set(pool.addresses())
        for probe_day in (0.1, 17.3, 42.7, 59.9):
            held = [
                t.ip_at(probe_day)
                for t in pool.timelines.values()
                if t.ip_at(probe_day) is not None
            ]
            assert len(held) == len(set(held))
            assert set(held) <= valid

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_timeline_queries_consistent(self, seed):
        pool = DhcpPool("p", 1, [Prefix(0x0B000000, 24)])
        specs = [LineChurnSpec(f"l{i}", 2.0) for i in range(10)]
        pool.simulate(specs, 30.0, random.Random(seed))
        for timeline in pool.timelines.values():
            assert timeline.allocation_count() == timeline.change_count() + 1
            intervals = list(timeline.intervals())
            assert len(intervals) == timeline.allocation_count()
            # Intervals are contiguous and ordered.
            for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
                assert e1 == s2
                assert s1 < e1
            assert intervals[-1][1] == timeline.horizon


class TestKneedleProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=5),
            min_size=5,
            max_size=60,
        ),
        st.integers(min_value=100, max_value=1000),
        st.integers(min_value=1, max_value=10),
    )
    def test_threshold_between_clusters(self, low_counts, high, n_high):
        """With a clear low cluster and a clear high cluster, the
        derived threshold separates them."""
        counts = sorted(low_counts) + [high] * n_high
        threshold = allocation_threshold(counts)
        assert max(low_counts) >= threshold - 1 or threshold <= high
        assert 2 <= threshold <= high


class TestDetectionDeterminism:
    def test_same_log_same_verdicts(self):
        from repro.experiments.runner import cached_run
        from repro.natdetect import detect_nated

        run = cached_run("small")
        log = run.crawl.merged_log()
        first = detect_nated(log)
        second = detect_nated(log)
        assert first.nated_ips() == second.nated_ips()
        assert first.user_counts() == second.user_counts()


class TestAddr6Properties:
    """Hypothesis coverage for the 128-bit address codec the whole v6
    serving path leans on."""

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_text_roundtrip(self, value):
        from repro.ipv6.addr6 import int_to_ip6, ip6_to_int

        assert ip6_to_int(int_to_ip6(value)) == value

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_subnet_of_is_covering_aligned_slash64(self, value):
        from repro.ipv6.addr6 import subnet_of

        subnet = subnet_of(value)
        assert subnet.length == 64
        assert subnet.contains(value)
        assert subnet.network & ((1 << 64) - 1) == 0
        assert subnet.first() <= value <= subnet.last()

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_nibbles_recompose(self, value):
        from repro.ipv6.addr6 import nibbles

        parts = nibbles(value)
        assert len(parts) == 32
        recomposed = 0
        for nibble in parts:
            recomposed = (recomposed << 4) | nibble
        assert recomposed == value

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.integers(min_value=0, max_value=(1 << 128) - 1),
    )
    def test_family_of_literal(self, a, b):
        from repro.ipv6.addr6 import int_to_ip6
        from repro.net.family import V4, V6, family_of_ip
        from repro.net.ipv4 import int_to_ip

        assert family_of_ip(int_to_ip6(a)) is V6
        assert family_of_ip(int_to_ip(b & 0xFFFFFFFF)) is V4


class TestV6ShardCutProperties:
    """Family-generic partition/trie behaviour at /64 shard cuts: a
    /64 atom never straddles shards, and a trie entry at a cut answers
    for exactly its own side."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=64))
    def test_v6_partition_tiles_on_slash64_atoms(self, shards):
        from repro.cluster import PartitionMap
        from repro.net.family import V6

        partition = PartitionMap(shards, family=V6)
        ranges = partition.ranges
        assert ranges[0].lo == 0
        assert ranges[-1].hi == (1 << 128) - 1
        atom = (1 << 64) - 1
        for prev, cur in zip(ranges, ranges[1:]):
            assert cur.lo == prev.hi + 1
        for shard_range in ranges:
            assert shard_range.lo & atom == 0
            assert shard_range.hi & atom == atom

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_trie_entry_at_cut_stays_inside_its_shard(
        self, shards, offset
    ):
        from repro.cluster import PartitionMap
        from repro.ipv6.addr6 import Prefix6, subnet_of
        from repro.net.family import V6
        from repro.net.prefixtrie import PrefixTrie

        partition = PartitionMap(shards, family=V6)
        cut = partition.ranges[1].lo  # first shard boundary
        block = Prefix6(cut, 64)
        trie = PrefixTrie(V6)
        trie.insert(block, "boundary")
        inside = cut | offset
        assert trie.lookup_value(inside) == "boundary"
        assert trie.lookup_value(cut - 1) is None
        # The /64 covering either side of the cut lands wholly in one
        # shard: the atom alignment the family guarantees.
        assert partition.shard_of(inside) == partition.shard_of(cut)
        below = subnet_of(cut - 1)
        assert partition.shard_of(below.first()) == partition.shard_of(
            below.last()
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=16))
    def test_v6_partition_wire_round_trip(self, shards):
        from repro.cluster import PartitionMap
        from repro.net.family import V6

        partition = PartitionMap(shards, family=V6)
        restored = PartitionMap.from_wire(partition.to_wire())
        assert restored == partition
        assert restored.family is V6
