"""Tests for the live (wall-clock, real-socket) reactor.

Everything stays on 127.0.0.1 — no external network is touched. These
tests prove the crawler's protocol code is transport-independent: the
same KRPC bytes flow over real sockets.
"""

import pytest

from repro.bittorrent.crawler import CrawlerConfig, DhtCrawler
from repro.bittorrent.krpc import (
    GetNodesQuery,
    GetNodesResponse,
    KrpcError,
    NodeInfo,
    PingQuery,
    PingResponse,
    decode_message,
    encode_message,
)
from repro.natdetect import detect_nated
from repro.sim.realtime import LiveLoop
from repro.sim.rng import RngHub


class TestLiveLoop:
    def test_timers_fire_in_order(self):
        loop = LiveLoop()
        seen = []
        loop.after(0.02, lambda: seen.append("b"))
        loop.after(0.01, lambda: seen.append("a"))
        loop.run_for(0.1)
        assert seen == ["a", "b"]

    def test_every_recurs(self):
        loop = LiveLoop()
        seen = []
        loop.every(0.02, lambda: seen.append(loop.now), until=0.09)
        loop.run_for(0.15)
        assert 3 <= len(seen) <= 5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            LiveLoop().run_for(-1.0)

    def test_socket_roundtrip(self):
        loop = LiveLoop()
        a = loop.open_udp_socket()
        b = loop.open_udp_socket()
        got = []
        b.on_receive(got.append)
        a.send(b.endpoint, b"hello live")
        loop.run_for(0.2)
        assert len(got) == 1
        assert got[0].payload == b"hello live"
        assert got[0].src == a.endpoint
        a.close()
        b.close()

    def test_closed_socket_rejects_send(self):
        loop = LiveLoop()
        sock = loop.open_udp_socket()
        sock.close()
        sock.close()  # idempotent
        with pytest.raises(RuntimeError):
            sock.send(sock.endpoint, b"x")


class TestKrpcOverRealSockets:
    def test_ping_roundtrip(self):
        loop = LiveLoop()
        responder = loop.open_udp_socket()
        node_id = bytes(range(20))

        def answer(datagram):
            message = decode_message(datagram.payload)
            assert isinstance(message, PingQuery)
            responder.send(
                datagram.src,
                encode_message(
                    PingResponse(message.txn, node_id, b"UT\x03\x05")
                ),
            )

        responder.on_receive(answer)
        client = loop.open_udp_socket()
        got = []
        client.on_receive(
            lambda d: got.append(decode_message(d.payload))
        )
        client.send(
            responder.endpoint,
            encode_message(PingQuery(b"\x11\x22", bytes(20))),
        )
        loop.run_for(0.3)
        assert len(got) == 1
        assert got[0].responder_id == node_id
        responder.close()
        client.close()


class TestCrawlerOverRealSockets:
    def test_crawler_detects_live_nat_signature(self):
        """Two live responders share one IP (127.0.0.1) on two ports
        with distinct node_ids — the crawler, running on wall-clock
        time over real sockets, must prove the NAT signature."""
        loop = LiveLoop()
        rng = RngHub(99).stream("live")

        responders = []
        node_ids = [bytes([i + 1]) * 20 for i in range(2)]
        for node_id in node_ids:
            sock = loop.open_udp_socket()

            def answer(datagram, sock=sock, node_id=node_id):
                try:
                    message = decode_message(datagram.payload)
                except KrpcError:
                    return
                if isinstance(message, PingQuery):
                    sock.send(
                        datagram.src,
                        encode_message(PingResponse(message.txn, node_id)),
                    )
                elif isinstance(message, GetNodesQuery):
                    contacts = tuple(
                        NodeInfo(nid, s.endpoint.ip, s.endpoint.port)
                        for nid, s in zip(node_ids, [r[1] for r in responders])
                    )
                    sock.send(
                        datagram.src,
                        encode_message(
                            GetNodesResponse(message.txn, node_id, contacts)
                        ),
                    )

            sock.on_receive(answer)
            responders.append((node_id, sock))

        crawler_sock = loop.open_udp_socket()
        config = CrawlerConfig(
            duration=1.5,            # seconds of wall clock
            tick_interval=0.05,
            reping_interval=0.4,
            retry_interval=0.2,
            contact_cooldown=0.3,
            rewalk_interval=0.0,
        )
        crawler = DhtCrawler(loop, crawler_sock, rng, config)
        crawler.start([responders[0][1].endpoint])
        loop.run_for(2.0)

        result = detect_nated(crawler.log, round_window=0.2)
        shared_ip = responders[0][1].endpoint.ip
        assert shared_ip in result.nated_ips()
        assert result.users_behind(shared_ip) == 2
        for _, sock in responders:
            sock.close()
        crawler_sock.close()
