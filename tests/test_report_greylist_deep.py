"""Deeper tests for reporting, greylist rendering and impact math."""

import pytest

from repro.blocklists.timeline import Listing, ListingStore
from repro.core.greylist import build_greylist, render_greylist
from repro.core.impact import PerListCounts, per_list_counts
from repro.core.report import PAPER_VALUES, build_report
from repro.core.reuse import ReuseAnalysis
from repro.natdetect.detector import NatDetectionResult, NatVerdict
from repro.net.asdb import ASDatabase, ASRecord
from repro.net.ipv4 import Prefix, int_to_ip, ip_to_int
from repro.ripe.pipeline import PipelineResult, ProbeSummary

W = [(0, 9)]


def make_analysis(
    *, listings=None, nated=(), dynamic_prefix=None, bt=None
):
    store = ListingStore(listings or [])
    verdicts = {
        ip: NatVerdict(ip, True, users, 2, 2, 1)
        for ip, users in nated
    }
    probes = []
    prefixes = set()
    if dynamic_prefix is not None:
        prefix = Prefix.from_text(dynamic_prefix)
        prefixes.add(prefix)
        probes.append(
            ProbeSummary(1, [prefix.first() + 1], 0.0, 5.0, {1})
        )
    pipeline = PipelineResult(
        all_probes=probes,
        same_as_probes=probes,
        frequent_probes=probes,
        daily_probes=probes,
        allocation_knee=8,
        dynamic_prefixes=prefixes,
    )
    db = ASDatabase()
    db.add(ASRecord(1, "one", prefixes=[Prefix.from_text("1.0.0.0/8")]))
    return ReuseAnalysis(
        store,
        W,
        NatDetectionResult(verdicts),
        pipeline,
        db,
        bittorrent_ips=bt or set(),
    )


class TestEmptyWorldEdges:
    def test_no_listings_at_all(self):
        analysis = make_analysis()
        assert analysis.blocklisted_ips == set()
        assert analysis.reused_ips() == set()
        report = build_report(analysis, all_list_ids=["a", "b"])
        measured = report.measured()
        assert measured["nated_listings"] == 0
        assert measured["max_days_listed"] == 0
        assert measured["median_days_all"] == 0

    def test_no_nated_but_dynamic(self):
        ip = ip_to_int("1.0.0.5")
        analysis = make_analysis(
            listings=[Listing("a", ip, 0, 3)],
            dynamic_prefix="1.0.0.0/24",
        )
        assert analysis.dynamic_blocklisted == {ip}
        assert analysis.nated_blocklisted == set()
        report = build_report(analysis, all_list_ids=["a"])
        assert report.users.cdf is None
        assert report.measured()["pct_nated_exactly_two_users"] == 0.0

    def test_greylist_empty(self):
        analysis = make_analysis()
        entries = build_greylist(analysis)
        assert entries == []
        text = render_greylist(entries)
        assert text.startswith("#")
        assert text.count("\n") == 2


class TestGreylistContent:
    def test_nat_plus_dynamic_kind(self):
        ip = ip_to_int("1.0.0.5")
        analysis = make_analysis(
            listings=[Listing("a", ip, 0, 3)],
            nated=[(ip, 4)],
            dynamic_prefix="1.0.0.0/24",
        )
        entries = build_greylist(analysis)
        assert len(entries) == 1
        assert entries[0].reuse_kind == "nat+dynamic"
        assert entries[0].detected_users == 4
        rendered = render_greylist(entries)
        assert f"{int_to_ip(ip)} nat+dynamic 4" in rendered

    def test_entries_sorted_by_address(self):
        ips = [ip_to_int("1.0.0.9"), ip_to_int("1.0.0.2")]
        analysis = make_analysis(
            listings=[Listing("a", ip, 0, 3) for ip in ips],
            nated=[(ip, 2) for ip in ips],
        )
        entries = build_greylist(analysis)
        assert [e.ip for e in entries] == sorted(ips)


class TestPerListCountsEdge:
    def test_all_zero_lists(self):
        analysis = make_analysis(
            listings=[Listing("a", ip_to_int("1.0.0.5"), 0, 3)]
        )
        counts = per_list_counts(
            analysis, "nated", all_list_ids=["a", "b", "c"]
        )
        assert counts.total_listings == 0
        assert counts.lists_with_any == 0
        assert counts.lists_with_none == 3
        assert counts.top10_listing_share == 0.0
        assert counts.mean_per_listing_list == 0.0

    def test_fraction_requires_positive_total(self):
        analysis = make_analysis()
        counts = per_list_counts(analysis, "nated", all_list_ids=[])
        with pytest.raises(ValueError):
            counts.fraction_of_lists_affected(0)


class TestPaperValuesTable:
    def test_all_keys_have_paper_values(self):
        # Guard against measured()/PAPER_VALUES drifting apart.
        analysis = make_analysis(
            listings=[Listing("a", ip_to_int("1.0.0.5"), 0, 3)],
            nated=[(ip_to_int("1.0.0.5"), 2)],
        )
        report = build_report(analysis, all_list_ids=["a"])
        assert set(report.measured()) == set(PAPER_VALUES)
        rows = report.comparison_rows()
        assert len(rows) == len(PAPER_VALUES)
        rendered = report.render()
        for key in PAPER_VALUES:
            assert key in rendered
