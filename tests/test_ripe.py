"""Tests for the RIPE Atlas substrate: logs, kneedle, simulate, pipeline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.internet.population import PopulationConfig, build_population
from repro.internet.scenario import ScenarioConfig, build_scenario
from repro.internet.topology import TopologyConfig, build_topology
from repro.net.asdb import ASDatabase, ASRecord
from repro.net.ipv4 import Prefix, ip_to_int, slash24_of
from repro.ripe.connlog import (
    ConnectionEvent,
    ConnectionLog,
    read_jsonl,
    write_jsonl,
)
from repro.ripe.kneedle import allocation_threshold, find_knee, find_knee_index
from repro.ripe.pipeline import PipelineConfig, run_pipeline, summarize_probes
from repro.ripe.simulate import AtlasConfig, deploy_probes, synthesize_log


class TestConnectionLog:
    def test_address_sequence_collapses_reconnects(self):
        log = ConnectionLog(
            [
                ConnectionEvent(1, 0.0, 100),
                ConnectionEvent(1, 5.0, 100),  # keepalive, same address
                ConnectionEvent(1, 9.0, 200),
                ConnectionEvent(1, 12.0, 200),
            ]
        )
        seq = log.address_sequence(1)
        assert [e.ip for e in seq] == [100, 200]

    def test_sequence_sorted_by_time(self):
        log = ConnectionLog(
            [
                ConnectionEvent(1, 9.0, 200),
                ConnectionEvent(1, 0.0, 100),
            ]
        )
        assert [e.ip for e in log.address_sequence(1)] == [100, 200]

    def test_probe_ids(self):
        log = ConnectionLog([ConnectionEvent(5, 0.0, 1), ConnectionEvent(2, 0.0, 1)])
        assert log.probe_ids() == [2, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionEvent(-1, 0.0, 1)
        with pytest.raises(ValueError):
            ConnectionEvent(1, -0.5, 1)

    def test_jsonl_roundtrip(self, tmp_path):
        log = ConnectionLog(
            [ConnectionEvent(1, 0.5, 100), ConnectionEvent(2, 1.5, 200)]
        )
        path = tmp_path / "atlas.jsonl"
        assert write_jsonl(log, path) == 2
        loaded = read_jsonl(path)
        assert list(loaded) == list(log)

    def test_jsonl_bad_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"p": "x"}\n')
        with pytest.raises(ValueError):
            read_jsonl(path)


class TestKneedle:
    def test_convex_increasing_knee(self):
        # Flat then sharp rise: knee at the bend.
        ys = [1.0] * 10 + [2.0, 3.0, 50.0, 500.0]
        xs = list(range(len(ys)))
        knee = find_knee(xs, ys, curve="convex")
        assert knee is not None
        assert 9 <= knee[0] <= 12

    def test_concave_increasing_elbow(self):
        # Sharp rise then plateau (diminishing returns).
        ys = [0.0, 40.0, 70.0, 85.0, 92.0, 95.0, 96.0, 97.0, 97.5, 98.0]
        xs = list(range(len(ys)))
        knee = find_knee(xs, ys, curve="concave")
        assert knee is not None
        assert 1 <= knee[0] <= 4

    def test_flat_curve_none(self):
        assert find_knee([0, 1, 2], [5.0, 5.0, 5.0]) is None

    def test_too_short_none(self):
        assert find_knee([0, 1], [1.0, 2.0]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            find_knee_index([0, 1], [1.0])

    def test_bad_params(self):
        with pytest.raises(ValueError):
            find_knee_index([0, 1, 2], [1, 2, 3], curve="wiggly")
        with pytest.raises(ValueError):
            find_knee_index([0, 1, 2], [1, 2, 3], direction="sideways")

    def test_decreasing_direction(self):
        ys = [500.0, 50.0, 3.0, 2.0] + [1.0] * 10
        xs = list(range(len(ys)))
        knee = find_knee(xs, ys, curve="convex", direction="decreasing")
        assert knee is not None

    def test_allocation_threshold_fallback(self):
        assert allocation_threshold([]) == 8
        assert allocation_threshold([1, 1, 1, 1]) == 8  # degenerate flat

    def test_allocation_threshold_finds_bend(self):
        counts = [1] * 60 + [2] * 10 + [3] * 6 + [5] * 4 + [8] * 2 + [300] * 5
        threshold = allocation_threshold(counts)
        assert 2 <= threshold <= 10

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=60))
    def test_allocation_threshold_total(self, counts):
        threshold = allocation_threshold(counts)
        assert threshold >= 2


def tiny_world(seed=3):
    topo = build_topology(
        TopologyConfig(n_eyeball=5, n_hosting=1, n_backbone=1, max_slash16s=1),
        random.Random(seed),
    )
    config = PopulationConfig(
        static_single_lines_per_16=15,
        home_nat_lines_per_16=3,
        cgn_sites_per_16=0.0,
        dynamic_pools_per_as_range=(1, 1),
        pool_slash24s_range=(1, 1),
        pool_lines_per_24=30,
        fast_pool_lines_per_24=15,
        fast_pool_fraction=0.5,
    )
    truth = build_population(topo, config, random.Random(seed))
    return truth


class TestDeployAndSynthesize:
    def test_fleet_composition(self):
        truth = tiny_world()
        config = AtlasConfig(n_probes=60, as_concentration=1.0)
        deployment = deploy_probes(truth, config, random.Random(1))
        assert len(deployment.placements) == 60
        movers = [
            p for p, (_, second, _) in deployment.placements.items() if second
        ]
        assert len(movers) == round(60 * config.mover_fraction)

    def test_movers_span_two_ases(self):
        truth = tiny_world()
        config = AtlasConfig(n_probes=60, as_concentration=1.0)
        deployment = deploy_probes(truth, config, random.Random(1))
        for probe_id, (first, second, switch) in deployment.placements.items():
            if second is not None:
                assert truth.lines[first].asn != truth.lines[second].asn
                assert switch is not None

    def test_log_addresses_belong_to_hosting_line(self):
        truth = tiny_world()
        config = AtlasConfig(n_probes=40, as_concentration=1.0)
        deployment = deploy_probes(truth, config, random.Random(2))
        log = synthesize_log(
            truth, deployment, config, random.Random(3), window=(0.0, 200.0)
        )
        for event in list(log)[:200]:
            line_key = deployment.line_of(event.probe_id, event.day)
            expected = truth.ip_of_line(line_key, event.day)
            assert event.ip == expected

    def test_static_probe_one_address(self):
        truth = tiny_world()
        config = AtlasConfig(
            n_probes=20, static_fraction=1.0, mover_fraction=0.0,
            as_concentration=1.0,
        )
        deployment = deploy_probes(truth, config, random.Random(4))
        log = synthesize_log(
            truth, deployment, config, random.Random(5), window=(0.0, 100.0)
        )
        for probe_id in log.probe_ids():
            assert len(log.address_sequence(probe_id)) == 1

    def test_bad_window(self):
        truth = tiny_world()
        config = AtlasConfig(n_probes=5, as_concentration=1.0)
        deployment = deploy_probes(truth, config, random.Random(1))
        with pytest.raises(ValueError):
            synthesize_log(
                truth, deployment, config, random.Random(1), window=(10.0, 5.0)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AtlasConfig(n_probes=0)
        with pytest.raises(ValueError):
            AtlasConfig(static_fraction=0.9, mover_fraction=0.3)


class TestPipeline:
    def make_log(self, entries):
        """entries: {probe_id: [(day, ip), ...]}"""
        log = ConnectionLog()
        for probe_id, events in entries.items():
            for day, ip in events:
                log.append(ConnectionEvent(probe_id, day, ip))
        return log

    def make_asdb(self):
        db = ASDatabase()
        db.add(ASRecord(1, "a", prefixes=[Prefix.from_text("1.0.0.0/8")]))
        db.add(ASRecord(2, "b", prefixes=[Prefix.from_text("2.0.0.0/8")]))
        return db

    def test_multi_as_probe_filtered(self):
        log = self.make_log(
            {
                1: [(float(d), ip_to_int("1.0.0.1") + d) for d in range(12)],
                2: [(0.0, ip_to_int("1.0.0.99")), (5.0, ip_to_int("2.0.0.5"))],
            }
        )
        result = run_pipeline(
            log, self.make_asdb(), PipelineConfig(fixed_allocation_threshold=8)
        )
        ids = {p.probe_id for p in result.same_as_probes}
        assert 1 in ids and 2 not in ids

    def test_frequency_threshold(self):
        log = self.make_log(
            {
                1: [(float(d), ip_to_int("1.0.0.1") + d) for d in range(12)],
                2: [(0.0, ip_to_int("1.0.1.1")), (5.0, ip_to_int("1.0.1.2"))],
            }
        )
        result = run_pipeline(
            log, self.make_asdb(), PipelineConfig(fixed_allocation_threshold=8)
        )
        ids = {p.probe_id for p in result.frequent_probes}
        assert ids == {1}

    def test_daily_filter(self):
        fast = [(d * 0.5, ip_to_int("1.0.0.1") + d) for d in range(20)]
        slow = [(d * 30.0, ip_to_int("1.0.1.1") + d) for d in range(10)]
        log = self.make_log({1: fast, 2: slow})
        result = run_pipeline(
            log, self.make_asdb(), PipelineConfig(fixed_allocation_threshold=8)
        )
        assert {p.probe_id for p in result.daily_probes} == {1}

    def test_expansion_to_slash24(self):
        fast = [(d * 0.5, ip_to_int("1.0.0.1") + d) for d in range(10)]
        log = self.make_log({1: fast})
        result = run_pipeline(
            log, self.make_asdb(), PipelineConfig(fixed_allocation_threshold=5)
        )
        assert result.dynamic_prefixes == {Prefix.from_text("1.0.0.0/24")}

    def test_expansion_length_configurable(self):
        fast = [(d * 0.5, ip_to_int("1.0.0.1") + d) for d in range(10)]
        log = self.make_log({1: fast})
        result = run_pipeline(
            log,
            self.make_asdb(),
            PipelineConfig(fixed_allocation_threshold=5, expansion_prefix_len=20),
        )
        assert result.dynamic_prefixes == {Prefix.from_text("1.0.0.0/20")}

    def test_bad_expansion_length(self):
        with pytest.raises(ValueError):
            run_pipeline(
                ConnectionLog(),
                self.make_asdb(),
                PipelineConfig(expansion_prefix_len=40),
            )

    def test_funnel_counts_monotone(self):
        sc = build_scenario(ScenarioConfig.small())
        result = run_pipeline(sc.atlas_log, sc.truth.asdb)
        funnel = result.funnel_counts()
        assert (
            funnel["all"]
            >= funnel["same_as"]
            >= funnel["frequent"]
            >= funnel["daily"]
        )

    def test_detected_prefixes_are_truly_dynamic(self):
        """Precision against ground truth: every detected /24 belongs
        to a real DHCP pool."""
        sc = build_scenario(ScenarioConfig.small())
        result = run_pipeline(sc.atlas_log, sc.truth.asdb)
        true_dynamic = sc.truth.dynamic_slash24s()
        assert result.dynamic_prefixes  # small scenario must find some
        assert result.dynamic_prefixes <= true_dynamic

    def test_mean_interchange_infinite_for_static(self):
        log = self.make_log({1: [(0.0, ip_to_int("1.0.0.1"))]})
        probes = summarize_probes(log, self.make_asdb())
        assert probes[0].mean_interchange_days() == float("inf")
