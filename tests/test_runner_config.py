"""Tests for run configuration and caching semantics."""

import pytest

from repro.experiments.runner import RunConfig, cached_run


class TestRunConfig:
    def test_small_preset_structure(self):
        config = RunConfig.small(seed=7)
        assert config.scenario.seed == 7
        assert config.crawl.duration_hours == 8.0
        # Small topology is genuinely small.
        assert config.scenario.topology.n_eyeball <= 10

    def test_default_preset_structure(self):
        config = RunConfig.default(seed=9)
        assert config.scenario.seed == 9
        assert config.scenario.topology.n_eyeball >= 30

    def test_presets_use_paper_windows(self):
        for config in (RunConfig.small(), RunConfig.default()):
            w1, w2 = config.scenario.windows
            assert w1[1] - w1[0] + 1 == 39
            assert w2[1] - w2[0] + 1 == 44

    def test_horizon_covers_windows(self):
        for config in (RunConfig.small(), RunConfig.default()):
            horizon = config.scenario.population.horizon_days
            for start, end in config.scenario.windows:
                assert end <= horizon


class TestCachedRun:
    def test_different_seeds_cached_separately(self):
        a = cached_run("small", seed=2020)
        b = cached_run("small", seed=2023)
        assert a is not b
        assert a is cached_run("small", seed=2020)
        assert b is cached_run("small", seed=2023)

    def test_seeded_runs_differ_but_stay_sane(self):
        a = cached_run("small", seed=2020)
        b = cached_run("small", seed=2023)
        # Different worlds...
        assert a.analysis.blocklisted_ips != b.analysis.blocklisted_ips
        # ...same invariants.
        for run in (a, b):
            truth_nated = set(run.scenario.truth.true_nated_ips())
            assert run.nat.nated_ips() <= truth_nated
            assert run.pipeline.dynamic_prefixes <= (
                run.scenario.truth.dynamic_slash24s()
            )
