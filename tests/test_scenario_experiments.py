"""Integration tests: scenario build and the full small-scale run."""

import pytest

from repro.core.funnel import compute_funnel
from repro.experiments.runner import RunConfig, cached_run, run_full
from repro.internet.scenario import (
    PAPER_WINDOWS,
    ScenarioConfig,
    build_scenario,
)


class TestScenario:
    def test_windows_match_paper_calendar(self):
        w1, w2 = PAPER_WINDOWS
        assert w1[1] - w1[0] + 1 == 39  # 3 Aug – 10 Sep 2019
        assert w2[1] - w2[0] + 1 == 44  # 29 Mar – 11 May 2020

    def test_deterministic_build(self):
        a = build_scenario(ScenarioConfig.small(seed=5))
        b = build_scenario(ScenarioConfig.small(seed=5))
        assert len(a.truth.lines) == len(b.truth.lines)
        assert len(a.listings) == len(b.listings)
        assert [e.ip for e in a.abuse_events[:50]] == [
            e.ip for e in b.abuse_events[:50]
        ]
        assert len(a.atlas_log) == len(b.atlas_log)

    def test_different_seeds_differ(self):
        a = build_scenario(ScenarioConfig.small(seed=5))
        b = build_scenario(ScenarioConfig.small(seed=6))
        assert {e.ip for e in a.abuse_events} != {e.ip for e in b.abuse_events}

    def test_catalog_is_151(self):
        sc = build_scenario(ScenarioConfig.small())
        assert len(sc.catalog) == 151

    def test_blocklisted_ips_nonempty(self):
        sc = build_scenario(ScenarioConfig.small())
        assert len(sc.blocklisted_ips()) > 10

    def test_listed_ips_resolve_to_topology(self):
        sc = build_scenario(ScenarioConfig.small())
        for ip in list(sc.blocklisted_ips())[:100]:
            assert sc.truth.asdb.asn_of(ip) is not None


@pytest.fixture(scope="module")
def small_run():
    return cached_run("small")


class TestFullRunSmall:
    def test_crawler_found_peers(self, small_run):
        assert small_run.crawl.crawler.discovered_ips > 20
        assert small_run.crawl.crawler.stats.ping_response_rate() > 0.2

    def test_nat_detection_has_true_positives(self, small_run):
        truth_nated = set(small_run.scenario.truth.true_nated_ips())
        detected = small_run.nat.nated_ips()
        assert detected
        # Verified detection must be pure: no false positives against
        # ground truth.
        assert detected <= truth_nated

    def test_nat_user_bounds_are_lower_bounds(self, small_run):
        truth = small_run.scenario.truth.true_nated_ips()
        for ip in small_run.nat.nated_ips():
            assert small_run.nat.users_behind(ip) <= truth[ip]

    def test_dynamic_prefixes_are_true_pools(self, small_run):
        true_dynamic = small_run.scenario.truth.dynamic_slash24s()
        assert small_run.pipeline.dynamic_prefixes
        assert small_run.pipeline.dynamic_prefixes <= true_dynamic

    def test_funnel_monotone(self, small_run):
        funnel = compute_funnel(small_run.analysis)
        assert funnel.monotone()

    def test_reused_ips_blocklisted(self, small_run):
        analysis = small_run.analysis
        assert analysis.reused_ips() <= analysis.blocklisted_ips

    def test_report_complete(self, small_run):
        measured = small_run.report.measured()
        assert measured["nated_blocklisted_ips"] >= 1
        assert measured["max_days_listed"] <= 44

    def test_duration_capped_by_window(self, small_run):
        samples = small_run.analysis.duration_samples()
        assert samples
        assert max(samples) <= 44

    def test_census_ran(self, small_run):
        assert small_run.census.metrics
        true_dynamic = small_run.scenario.truth.dynamic_slash24s()
        assert small_run.census.dynamic_blocks() <= true_dynamic

    def test_survey_summary(self, small_run):
        assert small_run.survey_summary.respondents == 65

    def test_cached_run_is_cached(self, small_run):
        assert cached_run("small") is small_run

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            cached_run("gigantic")
