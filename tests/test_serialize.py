"""Tests for ground-truth and listing serialization."""

import pytest

from repro.blocklists.timeline import Listing, ListingStore
from repro.internet.scenario import ScenarioConfig, build_scenario
from repro.internet.serialize import (
    FORMAT_VERSION,
    load_listings,
    load_truth,
    save_listings,
    save_truth,
    truth_from_dict,
    truth_to_dict,
)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig.small(seed=42))


class TestTruthRoundtrip:
    def test_dict_roundtrip_preserves_structure(self, scenario):
        truth = scenario.truth
        restored = truth_from_dict(truth_to_dict(truth))
        assert set(restored.lines) == set(truth.lines)
        assert set(restored.users) == set(truth.users)
        assert set(restored.pools) == set(truth.pools)
        assert len(restored.asdb) == len(truth.asdb)
        assert restored.horizon_days == truth.horizon_days

    def test_roundtrip_preserves_line_attributes(self, scenario):
        truth = scenario.truth
        restored = truth_from_dict(truth_to_dict(truth))
        for key, line in truth.lines.items():
            other = restored.lines[key]
            assert other.asn == line.asn
            assert other.addressing == line.addressing
            assert other.nat == line.nat
            assert other.static_ip == line.static_ip
            assert sorted(other.user_keys) == sorted(line.user_keys)

    def test_roundtrip_preserves_timelines(self, scenario):
        truth = scenario.truth
        restored = truth_from_dict(truth_to_dict(truth))
        for pool_id, pool in truth.pools.items():
            other = restored.pools[pool_id]
            for line_key, timeline in pool.timelines.items():
                assert (
                    other.timelines[line_key].addresses()
                    == timeline.addresses()
                )
                for day in (0.5, 100.3, 400.9):
                    assert other.timelines[line_key].ip_at(day) == (
                        timeline.ip_at(day)
                    )

    def test_roundtrip_preserves_derived_queries(self, scenario):
        truth = scenario.truth
        restored = truth_from_dict(truth_to_dict(truth))
        assert restored.true_nated_ips() == truth.true_nated_ips()
        assert restored.dynamic_slash24s() == truth.dynamic_slash24s()
        assert len(restored.compromised_users()) == len(
            truth.compromised_users()
        )

    def test_file_roundtrip(self, scenario, tmp_path):
        path = tmp_path / "world.json"
        save_truth(scenario.truth, path)
        restored = load_truth(path)
        assert set(restored.lines) == set(scenario.truth.lines)

    def test_version_checked(self, scenario):
        data = truth_to_dict(scenario.truth)
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            truth_from_dict(data)


class TestListingsRoundtrip:
    def test_roundtrip(self, tmp_path):
        store = ListingStore(
            [
                Listing("a", 1, 0, 5),
                Listing("b", 2, 3, 3),
            ]
        )
        path = tmp_path / "listings.jsonl"
        assert save_listings(store, path) == 2
        restored = load_listings(path)
        assert sorted(
            (l.list_id, l.ip, l.first_day, l.last_day) for l in restored
        ) == sorted(
            (l.list_id, l.ip, l.first_day, l.last_day) for l in store
        )

    def test_scenario_listings_roundtrip(self, scenario, tmp_path):
        path = tmp_path / "listings.jsonl"
        save_listings(scenario.listings, path)
        restored = load_listings(path)
        assert len(restored) == len(scenario.listings)
        assert restored.all_ips() == scenario.listings.all_ips()

    def test_bad_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"l": "a"}\n')
        with pytest.raises(ValueError):
            load_listings(path)
