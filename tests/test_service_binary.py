"""Binary wire codec: fuzzing, negotiation matrix, codec equality.

Three layers, mirroring the upgrade's compatibility promise:

* codec level — the tagged binary value encoding and the packed batch
  records round-trip everything the JSON codec carries (same
  ``json_values`` corpus as :mod:`tests.test_service_wire`), and
  hostile bytes fail as :class:`WireError`, never an unhandled crash;
* connection level — the ``hello`` negotiation matrix: a JSON-only
  client sees byte-identical replies from an upgraded server, an
  offering client gets the binary codec, and verdicts are
  field-for-field equal across codecs;
* fleet level — mixed router deployments (binary or JSON upstream ×
  binary or JSON downstream) all return the same verdicts.
"""

import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.local import LocalCluster
from repro.net.ipv4 import int_to_ip
from repro.service.client import ReputationClient, ServiceError
from repro.service.engine import QueryEngine, Verdict
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer
from repro.service.wire import (
    BIN_HEADER_SIZE,
    FT_BATCH_REP,
    FT_MSG,
    MAX_FRAME_BYTES,
    WireError,
    decode_batch_request,
    decode_binary_frame,
    decode_msg_payload,
    decode_record,
    encode_batch_request,
    encode_msg_frame,
    pack_degraded,
    pack_verdict,
    pack_verdict_wire,
    recv_binary_frame,
    recv_frame,
    send_frame,
    split_batch_reply,
)
from tests.test_service_wire import FakeSocket, json_values


def _verdict(**overrides):
    base = dict(
        ip=0x01020304,
        day=17,
        listed=True,
        lists=("dnsbl-alpha", "dnsbl-beta"),
        nated=True,
        dynamic=False,
        unjust=True,
        reuse_kind="nat",
        users=37,
        asn=64500,
        action="greylist",
        epoch=3,
        seq=41,
    )
    base.update(overrides)
    return Verdict(**base)


class TestBinaryCodecRoundtrip:
    @settings(max_examples=150, deadline=None)
    @given(json_values)
    def test_msg_roundtrip_matches_json_model(self, value):
        """Anything the JSON codec carries, the tagged binary encoding
        carries identically — same corpus, same decoded value."""
        frame = encode_msg_frame(value, 7)
        decoded = decode_binary_frame(frame)
        assert decoded is not None
        ftype, rid, payload, consumed = decoded
        assert (ftype, rid, consumed) == (FT_MSG, 7, len(frame))
        assert decode_msg_payload(payload) == value

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xFFFFFFFF),
                st.none()
                | st.integers(min_value=-(2**31), max_value=2**31 - 1),
            ),
            max_size=50,
        ),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_batch_request_roundtrip(self, pairs, rid):
        frame = encode_batch_request(pairs, rid)
        decoded = decode_binary_frame(frame)
        assert decoded is not None
        _ftype, got_rid, payload, _ = decoded
        assert got_rid == rid
        assert decode_batch_request(payload) == pairs

    def test_verdict_record_roundtrip_is_field_for_field(self):
        """The pinned cross-codec contract: a packed verdict decodes
        to exactly ``Verdict.to_wire()`` — every field, not a
        projection."""
        for verdict in (
            _verdict(),
            _verdict(listed=False, lists=(), unjust=False,
                     action="ignore", reuse_kind=""),
            _verdict(day=-3, users=0, asn=0, epoch=0, seq=0,
                     dynamic=True),
        ):
            record = pack_verdict(verdict)
            assert decode_record(record) == verdict.to_wire()
            # And the wire-dict repack (the router's JSON-upstream →
            # binary-downstream path) hits the same bytes.
            assert pack_verdict_wire(verdict.to_wire()) == record

    def test_degraded_record_roundtrip(self):
        record = pack_degraded(0x0A000001, 12, 2, "SHARD_UNAVAILABLE")
        assert decode_record(record) == {
            "ip": "10.0.0.1",
            "day": 12,
            "error": "SHARD_UNAVAILABLE",
            "shard": 2,
        }
        record = pack_degraded(1, None, 0, "SHARD_UNAVAILABLE")
        assert decode_record(record)["day"] is None


class TestBinaryFrameFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=64))
    def test_decode_binary_frame_never_crashes(self, blob):
        try:
            decode_binary_frame(blob)
        except WireError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=1, max_size=64),
           st.integers(min_value=1, max_value=7))
    def test_recv_binary_frame_never_crashes(self, blob, chunk):
        try:
            recv_binary_frame(FakeSocket(blob, chunk=chunk))
        except WireError:
            pass

    def test_torn_header_is_recoverable(self):
        """EOF inside the 10-byte header is end-of-stream, not a
        framing crime — the error must say so."""
        frame = encode_msg_frame({"op": "ping"}, 1)
        for cut in range(1, BIN_HEADER_SIZE):
            with pytest.raises(WireError) as excinfo:
                recv_binary_frame(FakeSocket(frame[:cut]))
            assert excinfo.value.recoverable

    def test_torn_payload_is_fatal(self):
        frame = encode_msg_frame({"op": "ping"}, 1)
        with pytest.raises(WireError) as excinfo:
            recv_binary_frame(FakeSocket(frame[: len(frame) - 2]))
        assert not excinfo.value.recoverable

    def test_bad_magic_is_fatal(self):
        frame = bytearray(encode_msg_frame({"op": "ping"}, 1))
        frame[0] ^= 0xFF
        with pytest.raises(WireError) as excinfo:
            recv_binary_frame(FakeSocket(bytes(frame)))
        assert not excinfo.value.recoverable

    def test_eintr_mid_frame_is_retried(self):
        """A signal landing mid-read must not be confused with EOF."""

        class InterruptingSocket(FakeSocket):
            def __init__(self, data):
                super().__init__(data, chunk=3)
                self._interrupts = 2

            def recv(self, size):
                if self._interrupts:
                    self._interrupts -= 1
                    raise InterruptedError
                return super().recv(size)

        frame = encode_msg_frame({"op": "ping"}, 9)
        got = recv_binary_frame(InterruptingSocket(frame))
        assert got is not None
        assert decode_msg_payload(got[2]) == {"op": "ping"}

    def test_declared_length_over_limit_rejected(self):
        header = struct.pack(">BBII", 0xB1, FT_MSG, 0, MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError) as excinfo:
            recv_binary_frame(FakeSocket(header))
        assert not excinfo.value.recoverable

    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=80))
    def test_record_decoders_never_crash(self, blob):
        try:
            for record in split_batch_reply(blob):
                decode_record(record)
        except WireError:
            pass


@pytest.fixture(scope="module")
def index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


@pytest.fixture()
def server(index):
    srv = ReputationServer(QueryEngine(index), connection_timeout=5.0)
    srv.start()
    yield srv
    srv.shutdown()


class TestNegotiation:
    def test_json_client_sees_pre_upgrade_hello(self, server):
        """A pre-negotiation client's hello must come back without any
        codec keys — the reply an old server would have sent."""
        with socket.create_connection(server.address, timeout=5.0) as s:
            send_frame(s, {"op": "hello"})
            reply = recv_frame(s)
        assert reply["ok"] is True
        assert "codec" not in reply["result"]
        assert "codecs" not in reply["result"]

    def test_offering_client_switches_to_binary(self, server):
        with ReputationClient(*server.address) as client:
            assert client.codec == "binary"
            # A plain hello (no offer) stays clean of codec keys even
            # on an upgraded connection.
            assert "codec" not in client.hello()
            hello = client.call(
                {"op": "hello", "accept_codecs": ["binary"]}
            )
            assert hello["codec"] == "binary"
            assert set(hello["codecs"]) == {"binary", "json"}

    def test_pinned_json_client_stays_on_json(self, server):
        with ReputationClient(*server.address, codec="json") as client:
            assert client.codec == "json"
            assert client.ping() is True

    def test_json_offer_without_binary_keeps_json(self, server):
        """``accept_codecs`` listing only json: reply carries the codec
        keys but the connection stays on the JSON framing."""
        with socket.create_connection(server.address, timeout=5.0) as s:
            send_frame(s, {"op": "hello", "accept_codecs": ["json"]})
            reply = recv_frame(s)
            assert reply["result"]["codec"] == "json"
            send_frame(s, {"op": "ping"})
            assert recv_frame(s)["result"] == "pong"

    def test_frames_after_switch_are_binary(self, server):
        """The hello reply itself is still JSON-framed; the very next
        frame speaks binary."""
        with socket.create_connection(server.address, timeout=5.0) as s:
            send_frame(s, {"op": "hello", "accept_codecs": ["binary"]})
            reply = recv_frame(s)
            assert reply["result"]["codec"] == "binary"
            s.sendall(encode_msg_frame({"op": "ping"}, 5))
            ftype, rid, payload = recv_binary_frame(s)
            assert (ftype, rid) == (FT_MSG, 5)
            assert decode_msg_payload(payload)["result"] == "pong"


class TestCodecEquality:
    def _sample_queries(self, index):
        ips = sorted(ip for ip, _ in index.interval_items())[:50] or [
            0x01020304
        ]
        day = index.default_day()
        queries = [(ip, None) for ip in ips]
        queries += [(ip, day) for ip in ips[:10]]
        queries += [(0xDEADBEEF, None), (0, day)]
        return queries

    def test_batch_verdicts_identical_across_codecs(self, server, index):
        queries = self._sample_queries(index)
        with ReputationClient(*server.address, codec="json") as jc, \
                ReputationClient(*server.address, codec="binary") as bc:
            assert bc.codec == "binary"
            json_verdicts = jc.query_batch(queries)
            binary_verdicts = bc.query_batch(queries)
        assert json_verdicts == binary_verdicts

    def test_point_verdicts_identical_across_codecs(self, server, index):
        ip = next(
            iter(sorted(ip for ip, _ in index.interval_items())),
            0x01020304,
        )
        with ReputationClient(*server.address, codec="json") as jc, \
                ReputationClient(*server.address, codec="binary") as bc:
            assert jc.query(ip) == bc.query(ip)
            assert jc.query(int_to_ip(ip)) == bc.query(int_to_ip(ip))

    def test_pipelined_equals_sequential_on_both_codecs(
        self, server, index
    ):
        queries = self._sample_queries(index)
        batches = [queries[i::4] for i in range(4)]
        for codec in ("json", "binary"):
            with ReputationClient(*server.address, codec=codec) as c:
                sequential = [c.query_batch(b) for b in batches]
                pipelined = c.query_batch_pipelined(batches, window=3)
            assert pipelined == sequential

    def test_error_strings_identical_across_codecs(self, server):
        errors = {}
        for codec in ("json", "binary"):
            with ReputationClient(*server.address, codec=codec) as c:
                got = []
                for bad in (
                    {"op": "nope"},
                    {"op": "query", "ip": "not-an-ip"},
                    {"op": "query", "ip": "1.2.3.4", "day": "x"},
                    {"op": "batch", "queries": "zz"},
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        c.call(bad)
                    got.append(str(excinfo.value))
                errors[codec] = got
        assert errors["json"] == errors["binary"]

    def test_binary_batch_fallback_for_unpackable_values(self, server):
        """A query the packed layout cannot carry (a day outside i32)
        must travel the JSON shape transparently — same verdict as a
        JSON connection, not a client-side error."""
        queries = [("1.2.3.4", 2**40), ("1.2.3.4", None)]
        with ReputationClient(*server.address, codec="json") as jc, \
                ReputationClient(*server.address, codec="binary") as bc:
            assert jc.query_batch(queries) == bc.query_batch(queries)


class TestMixedFleets:
    @pytest.fixture(scope="class")
    def fleet_index(self, small_full_run):
        return ReputationIndex.from_run(small_full_run)

    @pytest.mark.parametrize("backend_codec", ["json", "binary"])
    def test_router_matrix_serves_identical_verdicts(
        self, fleet_index, backend_codec
    ):
        """binary/JSON downstream × binary/JSON upstream: all four
        paths yield the same verdicts as a direct single server."""
        ips = sorted(
            ip for ip, _ in fleet_index.interval_items()
        )[:40] or [0x01020304]
        queries = [(ip, None) for ip in ips]
        with ReputationServer(QueryEngine(fleet_index)) as direct:
            direct.start()
            with ReputationClient(
                *direct.address, codec="json"
            ) as reference_client:
                reference = reference_client.query_batch(queries)
        with LocalCluster(
            fleet_index,
            shards=3,
            heartbeat_interval=0.2,
            backend_codec=backend_codec,
        ) as cluster:
            assert cluster.router.wait_healthy(timeout=10.0)
            for codec in ("json", "binary"):
                with ReputationClient(
                    *cluster.address, codec=codec
                ) as client:
                    assert client.codec == codec
                    assert client.query_batch(queries) == reference
                    assert (
                        client.query(ips[0]) == reference[0]
                    )

    def test_json_fleet_degrades_identically(self, fleet_index):
        """Shard-down degradation has the same wire shape whatever the
        upstream codec speaks."""
        ips = sorted(
            ip for ip, _ in fleet_index.interval_items()
        )[:20] or [0x01020304]
        queries = [(ip, None) for ip in ips]
        shapes = {}
        for backend_codec in ("json", "binary"):
            with LocalCluster(
                fleet_index,
                shards=3,
                heartbeat_interval=0.2,
                backend_codec=backend_codec,
            ) as cluster:
                assert cluster.router.wait_healthy(timeout=10.0)
                cluster.kill_primary(1)
                with ReputationClient(
                    *cluster.address, codec="binary"
                ) as client:
                    shapes[backend_codec] = client.query_batch(queries)
        assert shapes["json"] == shapes["binary"]
        degraded = [
            v for v in shapes["binary"] if v.get("error")
        ]
        assert all(v["error"] == "SHARD_UNAVAILABLE" for v in degraded)
        assert all(v["shard"] == 1 for v in degraded)


class TestBackpressure:
    """A peer that pipelines requests without draining replies must
    not grow the server's buffers without bound: reads pause at the
    high-water mark and resume once the queues drain, with no reply
    lost either way."""

    def test_flood_pauses_reads_then_resumes(self):
        import selectors
        import time

        from repro.service.aio import WireServer
        from repro.service.wire import decode_frame, encode_frame

        held = []

        def handler(conn, slot, kind, data):
            held.append(slot)  # completed later, from the test

        server = WireServer(handler)
        server.slot_high_water = 8
        server.slot_low_water = 2
        address = server.start()
        try:
            with socket.create_connection(address, timeout=5.0) as sock:
                frame = encode_frame({"op": "ping"})
                sock.sendall(frame * 40)
                deadline = time.monotonic() + 5.0
                conn = None
                while time.monotonic() < deadline:
                    conns = list(server._conns.values())
                    if conns and conns[0].paused:
                        conn = conns[0]
                        break
                    time.sleep(0.01)
                assert conn is not None, "server never paused reads"
                assert not (conn.events & selectors.EVENT_READ)

                # While paused, a second flood must sit unread in the
                # kernel, not in server memory.
                parsed = len(held)
                assert parsed >= 8
                sock.sendall(frame * 40)
                time.sleep(0.3)
                assert len(held) == parsed

                # Draining the held slots resumes reads; every one of
                # the 80 requests must eventually be answered.
                def complete_all():
                    for slot in list(held):
                        slot.complete({"ok": True, "result": "pong"})
                    held.clear()

                sock.settimeout(5.0)
                got = 0
                buf = bytearray()
                while got < 80:
                    server.reactor.call_soon(complete_all)
                    data = sock.recv(65536)
                    assert data, "server closed mid-drain"
                    buf += data
                    while True:
                        decoded = decode_frame(buf)
                        if decoded is None:
                            break
                        reply, consumed = decoded
                        del buf[:consumed]
                        assert reply == {"ok": True, "result": "pong"}
                        got += 1
                assert got == 80
        finally:
            server.shutdown()
