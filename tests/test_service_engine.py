"""Engine and index tests: the online path must be a faithful,
read-optimised view of the batch :class:`ReuseAnalysis`."""

import gzip
import pickle

import pytest

from repro.core.greylist import BlockAction, recommend_action
from repro.service.engine import ACTION_IGNORE, QueryEngine
from repro.service.index import ReputationIndex, SnapshotError


@pytest.fixture(scope="module")
def index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


@pytest.fixture()
def engine(index):
    return QueryEngine(index)


def _sample_days(analysis):
    """Days inside, at the edges of, and between the windows."""
    days = []
    for start, end in analysis.windows:
        days += [start, (start + end) // 2, end]
    days += [analysis.windows[0][1] + 1, 0]
    return sorted(set(days))


class TestIndexFaithfulness:
    def test_lists_match_store_intervals(self, small_full_run, index):
        """``lists_active_on`` must agree with the interval store's
        answer for every blocklisted IP on every probed day."""
        analysis = small_full_run.analysis
        store = analysis.observed
        for ip in analysis.blocklisted_ips:
            for day in _sample_days(analysis):
                expected = sorted(
                    {l.list_id for l in store.listings_active_on(ip, day)}
                )
                assert list(index.lists_active_on(ip, day)) == expected

    def test_reuse_flags_match_analysis(self, small_full_run, index):
        analysis = small_full_run.analysis
        probe = set(analysis.blocklisted_ips) | set(analysis.nated_ips)
        for ip in probe:
            assert index.is_nated(ip) == (ip in analysis.nated_ips)
            assert index.is_dynamic(ip) == analysis._dynamic_set.contains_ip(ip)
            assert index.is_reused(ip) == analysis.is_reused(ip)
            assert index.users_behind(ip) == (
                analysis.nat.users_behind(ip) if ip in analysis.nated_ips else 0
            )
        for ip in analysis.blocklisted_ips:
            assert index.asn_of(ip) == analysis.asn_of(ip)

    def test_policy_reuses_greylist_helper(self, small_full_run, index):
        """The index satisfies recommend_action's contract directly."""
        analysis = small_full_run.analysis
        for ip in sorted(analysis.blocklisted_ips)[:30]:
            for category in ("spam", "ddos"):
                assert recommend_action(
                    index, ip, blocklist_category=category
                ) == recommend_action(
                    analysis, ip, blocklist_category=category
                )

    def test_rollups_partition_blocklisted_ips(self, small_full_run, index):
        analysis = small_full_run.analysis
        rollups = index.as_rollups()
        assert sum(r.blocklisted for r in rollups) == len(
            analysis.blocklisted_ips
        )
        assert sum(r.nated for r in rollups) == len(analysis.nated_blocklisted)
        assert sum(r.dynamic for r in rollups) == len(
            analysis.dynamic_blocklisted
        )
        for rollup in rollups:
            assert rollup.reused <= rollup.blocklisted
            assert index.rollup_of(rollup.asn) == rollup

    def test_default_day_is_last_window_day(self, small_full_run, index):
        assert index.default_day() == small_full_run.analysis.windows[-1][1]


class TestVerdicts:
    def test_verdicts_match_batch_analysis(self, small_full_run, engine):
        """The acceptance contract: engine verdicts equal the batch
        analysis for every blocklisted IP in the scenario."""
        analysis = small_full_run.analysis
        index = engine.index
        for ip in analysis.blocklisted_ips:
            for day in _sample_days(analysis):
                verdict = engine.query(ip, day)
                listed_lists = {
                    l.list_id
                    for l in analysis.observed.listings_active_on(ip, day)
                }
                assert verdict.listed == bool(listed_lists)
                assert set(verdict.lists) == listed_lists
                assert verdict.nated == (ip in analysis.nated_ips)
                assert verdict.unjust == (
                    bool(listed_lists) and analysis.is_reused(ip)
                )
                if not listed_lists:
                    assert verdict.action == ACTION_IGNORE
                else:
                    per_list = {
                        recommend_action(
                            analysis, ip,
                            blocklist_category=index.category_of(list_id),
                        )
                        for list_id in listed_lists
                    }
                    expected = (
                        BlockAction.BLOCK
                        if BlockAction.BLOCK in per_list
                        else BlockAction.GREYLIST
                    )
                    assert verdict.action == expected

    def test_unjust_ips_exist_in_scenario(self, small_full_run, engine):
        """The scenario must actually exercise the unjust path."""
        analysis = small_full_run.analysis
        unjust_seen = False
        for ip in analysis.reused_ips():
            for start, end in analysis.windows:
                for day in range(start, end + 1):
                    if engine.query(ip, day).unjust:
                        unjust_seen = True
                        break
        assert unjust_seen

    def test_batch_equals_points(self, small_full_run, engine):
        ips = sorted(small_full_run.analysis.blocklisted_ips)[:40]
        pairs = [(ip, 230) for ip in ips]
        assert engine.query_batch(pairs) == [
            engine.query(ip, day) for ip, day in pairs
        ]

    def test_default_day_applied(self, engine):
        ip = next(iter(engine.index._intervals))
        assert engine.query(ip) == engine.query(
            ip, engine.index.default_day()
        )

    def test_bad_ip_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.query(-1, 230)
        with pytest.raises(ValueError):
            engine.query(1 << 33, 230)


class TestEngineCache:
    def test_repeat_query_hits_lru(self, index):
        engine = QueryEngine(index)
        ip = next(iter(index._intervals))
        engine.query(ip, 230)
        engine.query(ip, 230)
        stats = engine.stats()
        assert stats["queries"]["point"]["queries"] == 2
        assert stats["queries"]["point"]["cache_hits"] == 1
        assert stats["queries"]["point"]["hit_rate"] == 0.5

    def test_capacity_evicts_oldest(self, index):
        engine = QueryEngine(index, cache_size=2)
        ips = sorted(index._intervals)[:3]
        for ip in ips:
            engine.query(ip, 230)
        assert engine.stats()["cache"]["entries"] == 2
        engine.query(ips[0], 230)  # evicted earlier: a miss again
        assert engine.stats()["queries"]["point"]["cache_hits"] == 0

    def test_cached_verdicts_identical(self, index):
        engine = QueryEngine(index)
        ip = next(iter(index._intervals))
        assert engine.query(ip, 230) == engine.query(ip, 230)

    def test_negative_capacity_rejected(self, index):
        with pytest.raises(ValueError):
            QueryEngine(index, cache_size=-1)


class TestEpochCounters:
    """Per-epoch vs cumulative counters: an epoch swap restarts the
    per-epoch table (exposing the post-swap cold start) while the
    cumulative table keeps accumulating."""

    def _streamed_engine(self, index):
        from repro.stream.epoch import EpochIndex

        epochs = EpochIndex(index, day=index.default_day())
        return epochs, QueryEngine(epochs)

    def test_static_engine_tables_agree(self, index):
        engine = QueryEngine(index)
        ip = next(iter(index._intervals))
        engine.query(ip, 230)
        engine.query(ip, 230)
        stats = engine.stats()
        assert stats["queries_this_epoch"]["epoch"] == 0
        assert (
            stats["queries_this_epoch"]["counters"] == stats["queries"]
        )

    def test_swap_resets_per_epoch_not_cumulative(self, index):
        from repro.stream.delta import DeltaBatch

        epochs, engine = self._streamed_engine(index)
        ip = next(iter(index._intervals))
        engine.query(ip, 230)
        engine.query(ip, 230)  # cumulative: 2 queries, 1 hit
        epochs.apply(DeltaBatch(1, 231, ()))
        engine.query(ip, 230)  # epoch 1's first query: a cache miss
        stats = engine.stats()
        assert stats["queries"]["point"]["queries"] == 3
        assert stats["queries"]["point"]["cache_hits"] == 1
        this_epoch = stats["queries_this_epoch"]
        assert this_epoch["epoch"] == 1
        assert this_epoch["counters"]["point"]["queries"] == 1
        assert this_epoch["counters"]["point"]["cache_hits"] == 0

    def test_fresh_epoch_table_starts_empty(self, index):
        from repro.stream.delta import DeltaBatch

        epochs, engine = self._streamed_engine(index)
        ip = next(iter(index._intervals))
        engine.query(ip, 230)
        epochs.apply(DeltaBatch(1, 231, ()))
        # No queries since the swap: stats still shows the old table
        # (the reset happens lazily on the next counted query).
        engine.query(ip, 230)
        engine.query(ip, 230)
        this_epoch = engine.stats()["queries_this_epoch"]
        assert this_epoch["counters"]["point"]["queries"] == 2
        assert this_epoch["counters"]["point"]["cache_hits"] == 1


class TestSnapshots:
    def test_roundtrip_preserves_verdicts(
        self, small_full_run, index, tmp_path
    ):
        path = tmp_path / "small.idx"
        index.save(path)
        loaded = ReputationIndex.load(path)
        assert loaded.stats() == index.stats()
        engine, loaded_engine = QueryEngine(index), QueryEngine(loaded)
        analysis = small_full_run.analysis
        for ip in sorted(analysis.blocklisted_ips):
            for day in _sample_days(analysis):
                assert engine.query(ip, day) == loaded_engine.query(ip, day)

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError):
            ReputationIndex.load(tmp_path / "nope.idx")

    def test_garbage_snapshot(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"\x00\x01 not a snapshot at all")
        with pytest.raises(SnapshotError):
            ReputationIndex.load(path)

    def test_wrong_magic_snapshot(self, tmp_path):
        path = tmp_path / "magic.idx"
        with gzip.open(path, "wb") as handle:
            pickle.dump({"magic": "something-else"}, handle)
        with pytest.raises(SnapshotError):
            ReputationIndex.load(path)

    def test_wrong_version_snapshot(self, tmp_path):
        path = tmp_path / "version.idx"
        with gzip.open(path, "wb") as handle:
            pickle.dump(
                {
                    "magic": "repro-reputation-index",
                    "version": 999,
                    "state": {},
                },
                handle,
            )
        with pytest.raises(SnapshotError):
            ReputationIndex.load(path)
