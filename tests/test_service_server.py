"""Server/client tests: TCP end-to-end fidelity, hostile peers,
concurrency, graceful shutdown, and the CLI front end."""

import socket
import struct
import threading

import pytest

from repro.cli import main
from repro.net.ipv4 import int_to_ip
from repro.service.client import ReputationClient, ServiceError
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer
from repro.service.wire import recv_frame, send_frame


@pytest.fixture(scope="module")
def index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


@pytest.fixture()
def server(index):
    srv = ReputationServer(QueryEngine(index), connection_timeout=5.0)
    srv.start()
    yield srv
    srv.shutdown()


@pytest.fixture()
def client(server):
    host, port = server.address
    with ReputationClient(host, port) as c:
        yield c


def _raw_connection(server):
    return socket.create_connection(server.address, timeout=5.0)


class TestEndToEnd:
    def test_over_wire_matches_batch_analysis(
        self, small_full_run, server, client
    ):
        """The acceptance demo as a test: every blocklisted IP's
        over-the-wire verdict equals the batch ReuseAnalysis."""
        analysis = small_full_run.analysis
        days = [start for start, _ in analysis.windows] + [
            end for _, end in analysis.windows
        ]
        ips = sorted(analysis.blocklisted_ips)
        for day in days:
            verdicts = client.query_batch([(ip, day) for ip in ips])
            assert len(verdicts) == len(ips)
            for ip, verdict in zip(ips, verdicts):
                expected_lists = sorted(
                    {
                        l.list_id
                        for l in analysis.observed.listings_active_on(
                            ip, day
                        )
                    }
                )
                assert verdict["ip"] == int_to_ip(ip)
                assert verdict["lists"] == expected_lists
                assert verdict["listed"] == bool(expected_lists)
                assert verdict["nated"] == (ip in analysis.nated_ips)
                assert verdict["unjust"] == (
                    bool(expected_lists) and analysis.is_reused(ip)
                )
                assert verdict["action"] in ("block", "greylist", "ignore")
                if not expected_lists:
                    assert verdict["action"] == "ignore"

    def test_ping_and_stats(self, client):
        assert client.ping() is True
        stats = client.stats()
        assert stats["index"]["ips"] > 0
        assert "queries" in stats and "cache" in stats

    def test_point_query_accepts_dotted_quad_and_int(
        self, small_full_run, client
    ):
        ip = sorted(small_full_run.analysis.blocklisted_ips)[0]
        assert client.query(int_to_ip(ip), 230) == client.query(ip, 230)

    def test_sequential_requests_on_one_connection(self, client):
        for _ in range(20):
            assert client.ping()


class TestHostilePeers:
    def test_bad_request_shapes_get_error_replies(self, server):
        with _raw_connection(server) as sock:
            for request in (
                "not an object",
                {"op": "frobnicate"},
                {"op": "query"},
                {"op": "query", "ip": "999.1.2.3"},
                {"op": "query", "ip": True},
                {"op": "query", "ip": "1.2.3.4", "day": "tuesday"},
                {"op": "batch"},
                {"op": "batch", "queries": "nope"},
                {"op": "batch", "queries": [17]},
            ):
                send_frame(sock, request)
                reply = recv_frame(sock)
                assert reply["ok"] is False
                assert reply["error"]
            # The connection is still healthy afterwards.
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["result"] == "pong"

    def test_unparseable_json_keeps_connection(self, server):
        with _raw_connection(server) as sock:
            payload = b"{broken json"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            reply = recv_frame(sock)
            assert reply["ok"] is False
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["result"] == "pong"

    def test_oversized_declared_length_closes_connection(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(struct.pack(">I", 1 << 30))
            reply = recv_frame(sock)
            assert reply["ok"] is False
            # Server must then close: next read sees EOF.
            assert sock.recv(1) == b""

    def test_oversized_batch_rejected(self, server, client):
        with pytest.raises(ServiceError):
            client.query_batch([("1.2.3.4", 1)] * 10_001)

    def test_midframe_disconnect_harmless(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(struct.pack(">I", 100) + b"only half")
        # Server keeps serving other clients.
        host, port = server.address
        with ReputationClient(host, port) as c:
            assert c.ping()


class TestConcurrency:
    def test_concurrent_clients_agree(self, small_full_run, server):
        analysis = small_full_run.analysis
        ips = sorted(analysis.blocklisted_ips)[:25]
        host, port = server.address
        reference = {}
        with ReputationClient(host, port) as c:
            for ip in ips:
                reference[ip] = c.query(ip, 230)
        failures = []

        def worker():
            try:
                with ReputationClient(host, port) as c:
                    for ip in ips:
                        if c.query(ip, 230) != reference[ip]:
                            failures.append(ip)
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures
        assert not any(t.is_alive() for t in threads)

    def test_graceful_shutdown(self, index):
        srv = ReputationServer(QueryEngine(index))
        host, port = srv.start()
        with ReputationClient(host, port) as c:
            assert c.ping()
        srv.shutdown()
        with pytest.raises(ServiceError):
            ReputationClient(host, port, timeout=0.5)


class TestCliQuery:
    def test_query_verdict_line(self, small_full_run, server, capsys):
        host, port = server.address
        ip = sorted(small_full_run.analysis.blocklisted_ips)[0]
        code = main(
            [
                "query", int_to_ip(ip),
                "--day", "230",
                "--host", host,
                "--port", str(port),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert int_to_ip(ip) in out
        assert "action=" in out and "day=230" in out

    def test_query_batch_and_json(self, small_full_run, server, capsys):
        host, port = server.address
        ips = [int_to_ip(ip) for ip in
               sorted(small_full_run.analysis.blocklisted_ips)[:3]]
        code = main(
            ["query", *ips, "--port", str(port), "--json"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        import json

        for line, ip_text in zip(lines, ips):
            assert json.loads(line)["ip"] == ip_text

    def test_query_stats(self, server, capsys):
        host, port = server.address
        assert main(["query", "--stats", "--port", str(port)]) == 0
        assert '"index"' in capsys.readouterr().out

    def test_query_no_ips_is_error(self, server, capsys):
        host, port = server.address
        assert main(["query", "--port", str(port)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_query_bad_address_is_error(self, server, capsys):
        host, port = server.address
        assert main(
            ["query", "not-an-ip", "--port", str(port)]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_query_unreachable_server_is_error(self, capsys):
        # Bind-then-close to find a port that refuses connections.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        assert main(["query", "1.2.3.4", "--port", str(free_port)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_query_bad_port_is_error(self, capsys):
        assert main(["query", "1.2.3.4", "--port", "99999"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliServe:
    def test_serve_bad_port_is_error(self, capsys):
        assert main(["serve", "--port", "-5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_unreadable_snapshot_is_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.idx"
        bad.write_bytes(b"not a snapshot")
        assert main(
            ["serve", "--snapshot", str(bad), "--port", "0"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bad_preset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["serve", "--preset", "galactic"])
