"""Wire-protocol tests: codec correctness and hostile-input fuzzing.

The framing layer fronts a TCP socket, so like the KRPC decoder it
must fail *cleanly* on arbitrary bytes: a decoded message or a
:class:`FrameError`, never an unhandled exception.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wire import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)


class FakeSocket:
    """recv/sendall over an in-memory byte buffer, dribbling
    ``chunk`` bytes per recv to exercise the partial-read loop."""

    def __init__(self, data: bytes = b"", chunk: int = 3) -> None:
        self._data = data
        self._chunk = chunk
        self.sent = b""

    def recv(self, size: int) -> bytes:
        take = min(size, self._chunk, len(self._data))
        out, self._data = self._data[:take], self._data[take:]
        return out

    def sendall(self, data: bytes) -> None:
        self.sent += data


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10,
)


class TestCodecRoundtrip:
    @settings(max_examples=150, deadline=None)
    @given(json_values)
    def test_roundtrip(self, value):
        frame = encode_frame(value)
        decoded = decode_frame(frame)
        assert decoded is not None
        message, consumed = decoded
        assert message == value
        assert consumed == len(frame)

    @settings(max_examples=80, deadline=None)
    @given(json_values, json_values)
    def test_concatenated_frames_split_correctly(self, first, second):
        buffer = encode_frame(first) + encode_frame(second)
        message, consumed = decode_frame(buffer)
        assert message == first
        message2, consumed2 = decode_frame(buffer[consumed:])
        assert message2 == second
        assert consumed + consumed2 == len(buffer)

    def test_unserialisable_rejected(self):
        with pytest.raises(FrameError):
            encode_frame({"x": object()})
        with pytest.raises(FrameError):
            encode_frame(float("nan"))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(FrameError):
            encode_frame("x" * 100, max_size=50)


class TestFrameFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=200))
    def test_decode_frame_never_crashes(self, blob):
        try:
            decode_frame(blob)
        except FrameError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=200), st.integers(min_value=1, max_value=7))
    def test_recv_frame_never_crashes(self, blob, chunk):
        try:
            recv_frame(FakeSocket(blob, chunk=chunk))
        except FrameError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(json_values, st.integers(min_value=0, max_value=10))
    def test_truncated_frame_detected(self, value, cut):
        frame = encode_frame(value)
        if cut == 0 or cut >= len(frame):
            return
        truncated = frame[:-cut]
        if len(truncated) < 4:
            # Inside the header: either incomplete (None) or EOF error.
            assert decode_frame(truncated) is None
            with pytest.raises(FrameError):
                recv_frame(FakeSocket(truncated))
            return
        assert decode_frame(truncated) is None  # waits for more bytes
        with pytest.raises(FrameError) as excinfo:
            recv_frame(FakeSocket(truncated))
        assert not excinfo.value.recoverable


class TestStreamingFieldsOverWire:
    """The streaming additions to the protocol — delta rows inside
    update-log records, and the epoch/seq fields on verdicts, stats
    and the hello handshake — must survive the codec and reject
    malformed input with ValueError/FrameError only."""

    delta_rows = st.tuples(
        st.sampled_from(["add", "extend", "delist"]),
        st.integers(min_value=0, max_value=1000),  # day
        st.integers(min_value=0, max_value=(1 << 32) - 1),  # ip
        st.text(max_size=12),  # list_id
        st.integers(min_value=0, max_value=1000),  # first
        st.integers(min_value=0, max_value=1000),  # last
    )

    @settings(max_examples=150, deadline=None)
    @given(delta_rows)
    def test_delta_roundtrips_through_frames(self, row):
        from repro.stream.delta import ListingDelta

        op, day, ip, list_id, first, last = row
        if op != "delist" and last < first:
            first, last = last, first
        delta = ListingDelta(day, ip, list_id, op, first, last)
        decoded, _ = decode_frame(encode_frame(delta.to_wire()))
        assert ListingDelta.from_wire(decoded) == delta

    @settings(max_examples=200, deadline=None)
    @given(json_values)
    def test_from_wire_never_crashes_on_codec_output(self, value):
        from repro.stream.delta import ListingDelta

        decoded, _ = decode_frame(encode_frame(value))
        try:
            delta = ListingDelta.from_wire(decoded)
        except ValueError:
            return
        assert delta.to_wire() == list(decoded)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1 << 31),
        st.integers(min_value=0, max_value=1 << 31),
    )
    def test_epoch_fields_roundtrip_on_replies(self, epoch, seq):
        hello = {
            "ok": True,
            "result": {
                "service": "repro-reputation",
                "protocol": 1,
                "streaming": True,
                "epoch": epoch,
                "seq": seq,
            },
        }
        assert decode_frame(encode_frame(hello))[0] == hello

    def test_verdict_wire_form_carries_epoch_and_seq(self):
        from repro.service.engine import Verdict

        verdict = Verdict(
            ip=0x01020304,
            day=230,
            listed=True,
            lists=("alpha",),
            nated=False,
            dynamic=True,
            unjust=True,
            reuse_kind="dynamic",
            users=1,
            asn=64500,
            action="greylist",
            epoch=7,
            seq=9,
        )
        decoded, _ = decode_frame(encode_frame(verdict.to_wire()))
        assert decoded["epoch"] == 7
        assert decoded["seq"] == 9
        assert decoded["ip"] == "1.2.3.4"


class TestFrameLimits:
    def test_declared_length_over_limit_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError) as excinfo:
            decode_frame(header)
        assert not excinfo.value.recoverable
        with pytest.raises(FrameError):
            recv_frame(FakeSocket(header))

    def test_empty_payload_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(struct.pack(">I", 0) + b"extra")

    def test_bad_json_is_recoverable(self):
        payload = b"\xff\xfe{not json"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(FrameError) as excinfo:
            decode_frame(frame)
        assert excinfo.value.recoverable
        with pytest.raises(FrameError) as excinfo:
            recv_frame(FakeSocket(frame))
        assert excinfo.value.recoverable

    def test_clean_eof_returns_none(self):
        assert recv_frame(FakeSocket(b"")) is None

    def test_send_frame_writes_decodable_bytes(self):
        sock = FakeSocket()
        send_frame(sock, {"op": "ping"})
        assert decode_frame(sock.sent) == ({"op": "ping"}, len(sock.sent))
