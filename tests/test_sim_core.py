"""Tests for repro.sim: clock, scheduler, RNG streams."""

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, SimClock
from repro.sim.events import Scheduler
from repro.sim.rng import RngHub, weighted_index, zipf_weights


class TestSimClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_no_time_travel(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_unit_properties(self):
        clock = SimClock(2 * DAY)
        assert clock.now_days == 2.0
        assert clock.now_hours == 48.0

    def test_units(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0
        assert DAY == 86400.0


class TestScheduler:
    def test_runs_in_time_order(self):
        sched = Scheduler()
        seen = []
        sched.at(3.0, lambda: seen.append("c"))
        sched.at(1.0, lambda: seen.append("a"))
        sched.at(2.0, lambda: seen.append("b"))
        sched.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sched = Scheduler()
        seen = []
        sched.at(1.0, lambda: seen.append(1))
        sched.at(1.0, lambda: seen.append(2))
        sched.run()
        assert seen == [1, 2]

    def test_clock_matches_fire_time(self):
        sched = Scheduler()
        observed = []
        sched.at(4.5, lambda: observed.append(sched.now))
        sched.run()
        assert observed == [4.5]

    def test_after(self):
        sched = Scheduler()
        sched.clock.advance_to(10.0)
        observed = []
        sched.after(5.0, lambda: observed.append(sched.now))
        sched.run()
        assert observed == [15.0]

    def test_past_scheduling_rejected(self):
        sched = Scheduler()
        sched.clock.advance_to(10.0)
        with pytest.raises(ValueError):
            sched.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sched.after(-1.0, lambda: None)

    def test_cancellation(self):
        sched = Scheduler()
        seen = []
        event = sched.at(1.0, lambda: seen.append("x"))
        event.cancel()
        sched.run()
        assert seen == []

    def test_cancel_idempotent(self):
        sched = Scheduler()
        event = sched.at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.run() == 0

    def test_run_until_partial(self):
        sched = Scheduler()
        seen = []
        sched.at(1.0, lambda: seen.append(1))
        sched.at(5.0, lambda: seen.append(5))
        ran = sched.run_until(2.0)
        assert ran == 1
        assert seen == [1]
        assert sched.now == 2.0
        assert sched.pending == 1

    def test_every_repeats_until(self):
        sched = Scheduler()
        seen = []
        sched.every(1.0, lambda: seen.append(sched.now), until=3.5)
        sched.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_every_stopiteration_stops(self):
        sched = Scheduler()
        seen = []

        def tick():
            seen.append(sched.now)
            if len(seen) >= 2:
                raise StopIteration

        sched.every(1.0, tick, until=100.0)
        sched.run()
        assert seen == [1.0, 2.0]

    def test_every_bad_interval(self):
        sched = Scheduler()
        with pytest.raises(ValueError):
            sched.every(0.0, lambda: None)

    def test_nested_scheduling(self):
        sched = Scheduler()
        seen = []

        def first():
            seen.append("first")
            sched.after(1.0, lambda: seen.append("second"))

        sched.at(1.0, first)
        sched.run()
        assert seen == ["first", "second"]

    def test_executed_counter(self):
        sched = Scheduler()
        sched.at(1.0, lambda: None)
        sched.at(2.0, lambda: None)
        sched.run()
        assert sched.executed == 2


class TestRngHub:
    def test_same_seed_same_draws(self):
        a = RngHub(99).stream("x").random()
        b = RngHub(99).stream("x").random()
        assert a == b

    def test_different_streams_differ(self):
        hub = RngHub(99)
        assert hub.stream("x").random() != hub.stream("y").random()

    def test_stream_memoised(self):
        hub = RngHub(1)
        assert hub.stream("s") is hub.stream("s")

    def test_fork_independent(self):
        hub = RngHub(1)
        child_a = hub.fork("a")
        child_b = hub.fork("b")
        assert child_a.stream("s").random() != child_b.stream("s").random()

    def test_adding_stream_does_not_disturb_existing(self):
        hub1 = RngHub(5)
        first = hub1.stream("alpha")
        baseline = [first.random() for _ in range(3)]
        hub2 = RngHub(5)
        hub2.stream("newcomer").random()  # extra stream created first
        second = hub2.stream("alpha")
        assert [second.random() for _ in range(3)] == baseline


class TestWeights:
    def test_zipf_normalised(self):
        weights = zipf_weights(10)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights[0] > weights[-1]

    def test_zipf_needs_positive_count(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_weighted_index_bounds(self):
        import random

        rng = random.Random(3)
        draws = [weighted_index(rng, [0.1, 0.9]) for _ in range(200)]
        assert set(draws) <= {0, 1}
        assert draws.count(1) > draws.count(0)

    def test_weighted_index_empty(self):
        import random

        with pytest.raises(ValueError):
            weighted_index(random.Random(1), [])
