"""Tests for NAT gateways and host stacks."""

import pytest

from repro.net.ipv4 import ip_to_int
from repro.sim.events import Scheduler
from repro.sim.nat import HostStack, NatBehaviour, NatGateway
from repro.sim.rng import RngHub
from repro.sim.udp import Endpoint, UdpFabric


@pytest.fixture()
def world():
    sched = Scheduler()
    hub = RngHub(11)
    fabric = UdpFabric(sched, hub, loss_rate=0.0)
    return sched, fabric, hub.stream("test")


class TestHostStack:
    def test_socket_send_receive(self, world):
        sched, fabric, rng = world
        a = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        b = HostStack(fabric, ip_to_int("10.0.0.2"), rng)
        sock_a = a.open_socket()
        sock_b = b.open_socket(port=7000)
        got = []
        sock_b.on_receive(got.append)
        sock_a.send(Endpoint(ip_to_int("10.0.0.2"), 7000), b"hi")
        sched.run()
        assert len(got) == 1
        assert got[0].src == sock_a.endpoint

    def test_requested_port_honoured(self, world):
        _, fabric, rng = world
        host = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        sock = host.open_socket(port=6881)
        assert sock.endpoint.port == 6881

    def test_port_conflict(self, world):
        _, fabric, rng = world
        host = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        host.open_socket(port=6881)
        with pytest.raises(ValueError):
            host.open_socket(port=6881)

    def test_close_releases_port(self, world):
        sched, fabric, rng = world
        host = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        sock = host.open_socket(port=6881)
        sock.close()
        sock2 = host.open_socket(port=6881)
        assert sock2.endpoint.port == 6881

    def test_send_after_close_raises(self, world):
        _, fabric, rng = world
        host = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        sock = host.open_socket()
        sock.close()
        with pytest.raises(RuntimeError):
            sock.send(Endpoint(ip_to_int("10.0.0.2"), 1), b"x")

    def test_close_idempotent(self, world):
        _, fabric, rng = world
        host = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        sock = host.open_socket()
        sock.close()
        sock.close()  # no error

    def test_no_delivery_after_close(self, world):
        sched, fabric, rng = world
        a = HostStack(fabric, ip_to_int("10.0.0.1"), rng)
        b = HostStack(fabric, ip_to_int("10.0.0.2"), rng)
        sock_b = b.open_socket(port=7000)
        got = []
        sock_b.on_receive(got.append)
        sock_a = a.open_socket()
        sock_a.send(Endpoint(ip_to_int("10.0.0.2"), 7000), b"x")
        sock_b.close()
        sched.run()
        assert got == []
        assert fabric.stats.dropped_unbound == 1


class TestNatGateway:
    def test_two_users_distinct_public_ports(self, world):
        _, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        s1 = gw.open_socket()
        s2 = gw.open_socket()
        assert s1.endpoint.ip == s2.endpoint.ip == ip_to_int("20.0.0.1")
        assert s1.endpoint.port != s2.endpoint.port
        assert gw.active_mappings == 2

    def test_full_cone_reachable_by_stranger(self, world):
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket(behaviour=NatBehaviour.FULL_CONE)
        got = []
        inner.on_receive(got.append)
        stranger = HostStack(fabric, ip_to_int("10.9.9.9"), rng).open_socket()
        stranger.send(inner.endpoint, b"ping")
        sched.run()
        assert len(got) == 1
        assert gw.stats.inbound_delivered == 1

    def test_restricted_drops_stranger(self, world):
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket(behaviour=NatBehaviour.ADDRESS_RESTRICTED)
        got = []
        inner.on_receive(got.append)
        stranger = HostStack(fabric, ip_to_int("10.9.9.9"), rng).open_socket()
        stranger.send(inner.endpoint, b"ping")
        sched.run()
        assert got == []
        assert gw.stats.inbound_restricted == 1

    def test_restricted_allows_contacted_peer(self, world):
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket(behaviour=NatBehaviour.ADDRESS_RESTRICTED)
        got = []
        inner.on_receive(got.append)
        peer = HostStack(fabric, ip_to_int("10.9.9.9"), rng).open_socket(port=5000)
        inner.send(peer.endpoint, b"hello")  # punches the hole
        sched.run()
        peer.send(inner.endpoint, b"reply")
        sched.run()
        assert len(got) == 1

    def test_forwarded_port_is_full_cone(self, world):
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket(forwarded_port=6881)
        assert inner.endpoint.port == 6881
        got = []
        inner.on_receive(got.append)
        stranger = HostStack(fabric, ip_to_int("10.9.9.9"), rng).open_socket()
        stranger.send(inner.endpoint, b"ping")
        sched.run()
        assert len(got) == 1

    def test_forwarded_port_conflict(self, world):
        _, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        gw.open_socket(forwarded_port=6881)
        with pytest.raises(ValueError):
            gw.open_socket(forwarded_port=6881)

    def test_unknown_behaviour_rejected(self, world):
        _, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        with pytest.raises(ValueError):
            gw.open_socket(behaviour="weird")

    def test_closed_mapping_drops_inbound(self, world):
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket(behaviour=NatBehaviour.FULL_CONE)
        endpoint = inner.endpoint
        inner.close()
        stranger = HostStack(fabric, ip_to_int("10.9.9.9"), rng).open_socket()
        stranger.send(endpoint, b"ping")
        sched.run()
        assert gw.stats.inbound_no_mapping == 1

    def test_port_reusable_after_close(self, world):
        _, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket(forwarded_port=7777)
        inner.close()
        again = gw.open_socket(forwarded_port=7777)
        assert again.endpoint.port == 7777

    def test_shutdown_releases_ip(self, world):
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        gw.open_socket()
        gw.shutdown()
        assert gw.active_mappings == 0
        # IP can now be claimed by a plain host.
        host = HostStack(fabric, ip_to_int("20.0.0.1"), rng)
        host.open_socket()

    def test_nat_translation_roundtrip(self, world):
        """Outbound from NATed host reaches target with public src, and
        the reply routes back to the inner socket."""
        sched, fabric, rng = world
        gw = NatGateway(fabric, ip_to_int("20.0.0.1"), rng)
        inner = gw.open_socket()
        server = HostStack(fabric, ip_to_int("10.0.0.5"), rng).open_socket(port=5053)
        server_got = []
        inner_got = []
        server.on_receive(server_got.append)
        inner.on_receive(inner_got.append)
        inner.send(server.endpoint, b"query")
        sched.run()
        assert len(server_got) == 1
        assert server_got[0].src == inner.endpoint  # public view
        server.send(server_got[0].src, b"answer")
        sched.run()
        assert len(inner_got) == 1
        assert inner_got[0].payload == b"answer"
