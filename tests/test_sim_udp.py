"""Tests for the simulated UDP fabric."""

import pytest

from repro.net.ipv4 import ip_to_int
from repro.sim.events import Scheduler
from repro.sim.rng import RngHub
from repro.sim.udp import Datagram, Endpoint, UdpFabric


def make_fabric(loss=0.0):
    sched = Scheduler()
    fabric = UdpFabric(sched, RngHub(7), loss_rate=loss)
    return sched, fabric


def ep(ip, port):
    return Endpoint(ip_to_int(ip), port)


class TestEndpoint:
    def test_str(self):
        assert str(ep("1.2.3.4", 80)) == "1.2.3.4:80"

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            Endpoint(ip_to_int("1.2.3.4"), 0)

    def test_invalid_ip(self):
        with pytest.raises(ValueError):
            Endpoint(-1, 80)

    def test_ordering_hashable(self):
        a = ep("1.2.3.4", 80)
        b = ep("1.2.3.4", 81)
        assert a < b
        assert len({a, b, ep("1.2.3.4", 80)}) == 2


class TestBinding:
    def test_bind_and_deliver(self):
        sched, fabric = make_fabric()
        received = []
        dst = ep("10.0.0.1", 6881)
        fabric.bind(dst, received.append)
        fabric.send(ep("10.0.0.2", 1234), dst, b"hello")
        sched.run()
        assert len(received) == 1
        assert received[0].payload == b"hello"
        assert received[0].src == ep("10.0.0.2", 1234)

    def test_double_bind_rejected(self):
        _, fabric = make_fabric()
        dst = ep("10.0.0.1", 6881)
        fabric.bind(dst, lambda d: None)
        with pytest.raises(ValueError):
            fabric.bind(dst, lambda d: None)

    def test_unbind(self):
        sched, fabric = make_fabric()
        dst = ep("10.0.0.1", 6881)
        fabric.bind(dst, lambda d: None)
        fabric.unbind(dst)
        with pytest.raises(KeyError):
            fabric.unbind(dst)
        fabric.send(ep("10.0.0.2", 1), dst, b"x")
        sched.run()
        assert fabric.stats.dropped_unbound == 1

    def test_is_bound(self):
        _, fabric = make_fabric()
        dst = ep("10.0.0.1", 6881)
        assert not fabric.is_bound(dst)
        fabric.bind(dst, lambda d: None)
        assert fabric.is_bound(dst)


class TestIpLevelHandlers:
    def test_ip_handler_receives_any_port(self):
        sched, fabric = make_fabric()
        got = []
        nat_ip = ip_to_int("20.0.0.1")
        fabric.bind_ip(nat_ip, got.append)
        fabric.send(ep("10.0.0.2", 9), Endpoint(nat_ip, 1111), b"a")
        fabric.send(ep("10.0.0.2", 9), Endpoint(nat_ip, 2222), b"b")
        sched.run()
        assert {d.dst.port for d in got} == {1111, 2222}

    def test_ip_handler_conflicts_with_port_binding(self):
        _, fabric = make_fabric()
        nat_ip = ip_to_int("20.0.0.1")
        fabric.bind(Endpoint(nat_ip, 80), lambda d: None)
        with pytest.raises(ValueError):
            fabric.bind_ip(nat_ip, lambda d: None)

    def test_port_binding_conflicts_with_ip_handler(self):
        _, fabric = make_fabric()
        nat_ip = ip_to_int("20.0.0.1")
        fabric.bind_ip(nat_ip, lambda d: None)
        with pytest.raises(ValueError):
            fabric.bind(Endpoint(nat_ip, 80), lambda d: None)

    def test_unbind_ip(self):
        _, fabric = make_fabric()
        nat_ip = ip_to_int("20.0.0.1")
        fabric.bind_ip(nat_ip, lambda d: None)
        fabric.unbind_ip(nat_ip)
        with pytest.raises(KeyError):
            fabric.unbind_ip(nat_ip)


class TestLossAndLatency:
    def test_zero_loss_delivers_all(self):
        sched, fabric = make_fabric(loss=0.0)
        got = []
        dst = ep("10.0.0.1", 6881)
        fabric.bind(dst, got.append)
        for _ in range(50):
            fabric.send(ep("10.0.0.2", 1), dst, b"x")
        sched.run()
        assert len(got) == 50
        assert fabric.stats.delivery_rate() == 1.0

    def test_heavy_loss_drops_some(self):
        sched, fabric = make_fabric(loss=0.5)
        got = []
        dst = ep("10.0.0.1", 6881)
        fabric.bind(dst, got.append)
        for _ in range(300):
            fabric.send(ep("10.0.0.2", 1), dst, b"x")
        sched.run()
        assert 0 < len(got) < 300
        assert fabric.stats.dropped_loss == 300 - len(got)

    def test_delivery_is_delayed(self):
        sched, fabric = make_fabric()
        times = []
        dst = ep("10.0.0.1", 6881)
        fabric.bind(dst, lambda d: times.append(sched.now))
        fabric.send(ep("10.0.0.2", 1), dst, b"x")
        assert times == []  # nothing delivered synchronously
        sched.run()
        assert len(times) == 1
        assert times[0] > 0.0

    def test_bad_loss_rate_rejected(self):
        sched = Scheduler()
        with pytest.raises(ValueError):
            UdpFabric(sched, RngHub(1), loss_rate=1.0)

    def test_bad_latency_rejected(self):
        sched = Scheduler()
        with pytest.raises(ValueError):
            UdpFabric(sched, RngHub(1), latency_min=0.5, latency_max=0.1)
