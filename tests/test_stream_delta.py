"""Delta-layer tests: wire rows, diff/apply as inverses, and the
day-advance replay reconstructing the store it was derived from.

The diff/apply pair is the streaming system's foundation: if
``apply_deltas(old, diff_stores(old, new)) != new`` anywhere, every
layer above (log, epochs, server) silently serves wrong verdicts — so
the properties here are exercised over randomised store pairs, and
``ListingStore.diff_against`` is cross-checked against
``listings_active_on`` on random day pairs as the ISSUE pins it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocklists.timeline import Listing, ListingStore
from repro.stream.delta import (
    OP_ADD,
    OP_DELIST,
    OP_EXTEND,
    DeltaBatch,
    ListingDelta,
    apply_deltas,
    apply_to_spans,
    day_advance_batches,
    diff_stores,
    store_as_of,
    truncate_spans,
)

# -- randomised stores -------------------------------------------------
#
# Interval identity is (ip, list_id, first_day); a real store never
# holds duplicates (gap-splitting guarantees distinct starts per
# (list, ip)), so the strategy dedupes on that key.

_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # ip
        st.sampled_from(["alpha", "beta", "gamma"]),  # list_id
        st.integers(min_value=0, max_value=25),  # first_day
        st.integers(min_value=0, max_value=8),  # duration - 1
    ),
    max_size=25,
)


def _build_store(rows):
    seen = set()
    store = ListingStore()
    for ip, list_id, first, extra in rows:
        key = (ip, list_id, first)
        if key in seen:
            continue
        seen.add(key)
        store.add(Listing(list_id, ip, first, first + extra))
    return store


stores = _rows.map(_build_store)


def _canon(store):
    return sorted(
        (l.ip, l.list_id, l.first_day, l.last_day) for l in store
    )


class TestListingDelta:
    def test_wire_roundtrip(self):
        delta = ListingDelta(7, 123, "alpha", OP_ADD, 5, 9)
        assert ListingDelta.from_wire(delta.to_wire()) == delta

    def test_removal_delist_roundtrips(self):
        delta = ListingDelta(7, 123, "alpha", OP_DELIST, 5, 4)
        assert delta.removes
        assert ListingDelta.from_wire(delta.to_wire()) == delta

    def test_non_delist_cannot_end_before_start(self):
        with pytest.raises(ValueError):
            ListingDelta(7, 123, "alpha", OP_ADD, 5, 4)
        with pytest.raises(ValueError):
            ListingDelta(7, 123, "alpha", OP_EXTEND, 5, 4)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ListingDelta(7, 123, "alpha", "replace", 5, 9)

    @pytest.mark.parametrize(
        "row",
        [
            "not a row",
            [],
            ["add", 1, 2, "x", 3],  # five fields
            ["add", 1, 2, "x", 3, 4, 5],  # seven fields
            [3, 1, 2, "x", 3, 4],  # op not a string
            ["add", 1, 2, 9, 3, 4],  # list_id not a string
            ["add", "one", 2, "x", 3, 4],  # day not an int
            ["add", 1, True, "x", 3, 4],  # bool masquerading as int
            ["add", 1, 2, "x", 3.5, 4],  # float day
            ["add", 1, -1, "x", 3, 4],  # ip below range
            ["add", 1, 1 << 32, "x", 3, 4],  # ip above range
            ["frobnicate", 1, 2, "x", 3, 4],  # unknown op
            ["add", 1, 2, "x", 4, 3],  # add ending before start
        ],
    )
    def test_malformed_wire_rows_rejected(self, row):
        with pytest.raises(ValueError):
            ListingDelta.from_wire(row)

    def test_batch_sequence_must_be_positive(self):
        with pytest.raises(ValueError):
            DeltaBatch(0, 1, ())
        assert DeltaBatch(1, 1, []).deltas == ()


class TestApplyToSpans:
    def test_add_extend_delist_remove(self):
        spans = [(5, 9, "alpha")]
        spans = apply_to_spans(
            spans, [ListingDelta(1, 0, "beta", OP_ADD, 2, 3)]
        )
        assert spans == [(2, 3, "beta"), (5, 9, "alpha")]
        spans = apply_to_spans(
            spans, [ListingDelta(2, 0, "alpha", OP_EXTEND, 5, 12)]
        )
        assert (5, 12, "alpha") in spans
        spans = apply_to_spans(
            spans, [ListingDelta(3, 0, "beta", OP_DELIST, 2, 1)]
        )
        assert spans == [(5, 12, "alpha")]

    def test_idempotent_replay(self):
        deltas = [
            ListingDelta(1, 0, "alpha", OP_ADD, 2, 4),
            ListingDelta(1, 0, "beta", OP_DELIST, 7, 6),
        ]
        once = apply_to_spans([(7, 9, "beta")], deltas)
        twice = apply_to_spans(once, deltas)
        assert once == twice == [(2, 4, "alpha")]


class TestDiffApplyInverse:
    @settings(max_examples=120, deadline=None)
    @given(stores, stores)
    def test_apply_of_diff_reaches_target(self, old, new):
        deltas = diff_stores(old, new)
        assert _canon(apply_deltas(old, deltas)) == _canon(new)

    @settings(max_examples=60, deadline=None)
    @given(stores)
    def test_self_diff_is_empty(self, store):
        assert diff_stores(store, store) == []

    @settings(max_examples=60, deadline=None)
    @given(stores, stores)
    def test_deltas_are_ip_ordered_and_stamped(self, old, new):
        deltas = diff_stores(old, new, day=42)
        keys = [(d.ip, d.list_id, d.first_day) for d in deltas]
        assert keys == sorted(keys)
        assert all(d.day == 42 for d in deltas)

    def test_shrink_becomes_delist_removal_becomes_retraction(self):
        old = _build_store([(1, "alpha", 5, 9), (2, "beta", 3, 0)])
        new = _build_store([(1, "alpha", 5, 2)])
        deltas = diff_stores(old, new)
        ops = {(d.ip, d.op, d.removes) for d in deltas}
        assert ops == {(1, OP_DELIST, False), (2, OP_DELIST, True)}


class TestDiffAgainst:
    """The satellite contract: ``ListingStore.diff_against`` agrees
    with ``listings_active_on`` on random day pairs."""

    @settings(max_examples=100, deadline=None)
    @given(
        stores,
        stores,
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=40),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    def test_active_sets_match_after_apply(self, a, b, probes):
        patched = apply_deltas(a, a.diff_against(b))
        for ip, day in probes:
            assert patched.listings_active_on(ip, day) == (
                b.listings_active_on(ip, day)
            )

    def test_returns_listing_deltas(self):
        a = _build_store([(1, "alpha", 5, 2)])
        b = _build_store([(1, "alpha", 5, 4), (2, "beta", 1, 1)])
        deltas = a.diff_against(b)
        assert all(isinstance(d, ListingDelta) for d in deltas)
        assert {d.op for d in deltas} == {OP_ADD, OP_EXTEND}


class TestAsOfViews:
    @settings(max_examples=80, deadline=None)
    @given(stores, st.integers(min_value=-2, max_value=40))
    def test_store_as_of_matches_span_truncation(self, store, day):
        view = store_as_of(store, day)
        for ip in store.all_ips() | view.all_ips():
            spans = [
                (l.first_day, l.last_day, l.list_id)
                for l in store.listings_of_ip(ip)
            ]
            expected = truncate_spans(spans, day)
            got = sorted(
                (l.first_day, l.last_day, l.list_id)
                for l in view.listings_of_ip(ip)
            )
            assert got == expected

    def test_future_intervals_invisible(self):
        store = _build_store([(1, "alpha", 10, 5), (1, "beta", 3, 2)])
        view = store_as_of(store, 7)
        assert [l.list_id for l in view.listings_of_ip(1)] == ["beta"]


class TestDayAdvanceReplay:
    @settings(max_examples=100, deadline=None)
    @given(stores, st.integers(min_value=0, max_value=30))
    def test_full_replay_reconstructs_store(self, store, start_day):
        state = store_as_of(store, start_day)
        for batch in day_advance_batches(store, start_day=start_day):
            state = apply_deltas(state, batch.deltas)
        assert _canon(state) == _canon(store)

    @settings(max_examples=60, deadline=None)
    @given(stores, st.integers(min_value=0, max_value=30))
    def test_batches_are_contiguous_ordered_days(self, store, start_day):
        batches = list(day_advance_batches(store, start_day=start_day))
        assert [b.seq for b in batches] == list(
            range(1, len(batches) + 1)
        )
        days = [b.day for b in batches]
        assert days == sorted(days)
        assert all(day > start_day for day in days)
        for batch in batches:
            assert all(d.day == batch.day for d in batch.deltas)
            assert batch.deltas  # empty days are skipped

    @settings(max_examples=50, deadline=None)
    @given(stores, st.integers(min_value=0, max_value=30))
    def test_prefix_replay_matches_as_of_view(self, store, start_day):
        """Stopping the replay mid-stream leaves exactly the state a
        live collector would hold on the last applied day — the
        invariant the serving path's per-epoch verdicts rely on."""
        state = store_as_of(store, start_day)
        for batch in day_advance_batches(store, start_day=start_day):
            state = apply_deltas(state, batch.deltas)
            assert _canon(state) == _canon(store_as_of(store, batch.day))

    def test_replay_after_horizon_is_empty(self):
        store = _build_store([(1, "alpha", 2, 3)])
        assert list(day_advance_batches(store, start_day=20)) == []

    def test_end_day_limits_the_stream(self):
        store = _build_store([(1, "alpha", 2, 8)])
        batches = list(
            day_advance_batches(store, start_day=2, end_day=5)
        )
        assert [b.day for b in batches] == [3, 4, 5]

    def test_single_day_opener_adds_then_delists(self):
        store = _build_store([(1, "alpha", 5, 0)])
        (batch,) = day_advance_batches(store, start_day=4)
        assert [d.op for d in batch.deltas] == [OP_ADD, OP_DELIST]
        assert apply_to_spans([], batch.deltas) == [(5, 5, "alpha")]
