"""Update-log tests: roundtrip, crash recovery, and hostile bytes.

The log's one load-bearing promise is the recovery contract: a crash
mid-append (the file ends in a truncated gzip member) loses at most
the record being written — everything before it reads back intact, and
a writer reopened on the damaged file truncates the tail and resumes
the sequence. The kill-mid-write test proves it at every byte offset
of a real log. Anything else — bit flips inside a complete member,
sequence gaps, non-log files — must surface as
:class:`UpdateLogError`, never as a raw exception.
"""

import gzip
import json
import threading
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stream.delta import DeltaBatch, ListingDelta
from repro.stream.log import (
    LOG_MAGIC,
    LOG_VERSION,
    UpdateLogError,
    UpdateLogReader,
    UpdateLogWriter,
    read_update_log,
    write_update_log,
)


def _batch(seq, day=None, n=2):
    day = seq + 10 if day is None else day
    return DeltaBatch(
        seq,
        day,
        tuple(
            ListingDelta(day, 100 + i, "alpha", "extend", 1, day)
            for i in range(n)
        ),
    )


BATCHES = [_batch(seq) for seq in range(1, 5)]


def _member(doc):
    """A complete gzip member holding one JSON document — for crafting
    corrupt logs by hand."""
    return gzip.compress(
        json.dumps(doc, separators=(",", ":"), sort_keys=True).encode(),
        6,
    )


def _header_doc(start_day=0):
    return {
        "magic": LOG_MAGIC,
        "version": LOG_VERSION,
        "start_day": start_day,
        "meta": {},
    }


def _record_doc(batch):
    body = {
        "seq": batch.seq,
        "day": batch.day,
        "deltas": [d.to_wire() for d in batch.deltas],
    }
    crc = zlib.crc32(
        json.dumps(body, separators=(",", ":"), sort_keys=True).encode()
    )
    return {**body, "crc": crc}


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "log.gz"
        write_update_log(
            path, BATCHES, start_day=11, meta={"preset": "small"}
        )
        header, batches = read_update_log(path)
        assert header["magic"] == LOG_MAGIC
        assert header["version"] == LOG_VERSION
        assert header["start_day"] == 11
        assert header["meta"] == {"preset": "small"}
        assert batches == BATCHES

    def test_empty_log_has_header_only(self, tmp_path):
        path = tmp_path / "log.gz"
        UpdateLogWriter(path, start_day=3)
        header, batches = read_update_log(path)
        assert header["start_day"] == 3
        assert batches == []

    def test_append_deltas_assigns_next_seq(self, tmp_path):
        writer = UpdateLogWriter(tmp_path / "log.gz")
        first = writer.append_deltas(5, BATCHES[0].deltas)
        second = writer.append_deltas(6, BATCHES[1].deltas)
        assert (first.seq, second.seq) == (1, 2)
        _, batches = read_update_log(writer.path)
        assert [b.seq for b in batches] == [1, 2]

    def test_writer_enforces_sequence(self, tmp_path):
        writer = UpdateLogWriter(tmp_path / "log.gz")
        writer.append(BATCHES[0])
        with pytest.raises(UpdateLogError):
            writer.append(_batch(5))
        with pytest.raises(UpdateLogError):
            writer.append(BATCHES[0])  # replaying seq 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(UpdateLogError):
            read_update_log(tmp_path / "nope.gz")


class TestKillMidWrite:
    """Truncate a real log at *every* byte offset and check the
    recovery contract holds at each one."""

    def _boundaries(self, path):
        """Byte offsets at which the log is whole: after the header
        and after each appended record."""
        writer = UpdateLogWriter(path, start_day=11)
        offsets = [path.stat().st_size]
        for batch in BATCHES:
            writer.append(batch)
            offsets.append(path.stat().st_size)
        return offsets

    def test_every_truncation_recovers_a_prefix(self, tmp_path):
        path = tmp_path / "log.gz"
        offsets = self._boundaries(path)
        blob = path.read_bytes()
        assert offsets[-1] == len(blob)
        victim = tmp_path / "cut.gz"
        for cut in range(len(blob) + 1):
            victim.write_bytes(blob[:cut])
            complete = sum(1 for off in offsets if off <= cut)
            if complete == 0:
                # Not even the header survived.
                with pytest.raises(UpdateLogError):
                    read_update_log(victim)
                continue
            header, batches = read_update_log(victim)
            assert header["start_day"] == 11
            assert batches == BATCHES[: complete - 1], cut

    def test_writer_reopen_truncates_tail_and_resumes(self, tmp_path):
        path = tmp_path / "log.gz"
        offsets = self._boundaries(path)
        blob = path.read_bytes()
        # Cut inside the last record: two complete batches survive.
        cut = offsets[3] + (offsets[4] - offsets[3]) // 2
        victim = tmp_path / "cut.gz"
        victim.write_bytes(blob[:cut])
        writer = UpdateLogWriter(victim)
        assert writer.next_seq == 4
        assert victim.stat().st_size == offsets[3]
        assert writer.header["start_day"] == 11  # header preserved
        writer.append(_batch(4, day=99))
        _, batches = read_update_log(victim)
        assert [b.seq for b in batches] == [1, 2, 3, 4]
        assert batches[-1].day == 99

    def test_reopen_on_partial_header_starts_over(self, tmp_path):
        path = tmp_path / "log.gz"
        self._boundaries(path)
        blob = path.read_bytes()
        victim = tmp_path / "cut.gz"
        victim.write_bytes(blob[:7])  # inside the header member
        writer = UpdateLogWriter(victim, start_day=21)
        assert writer.next_seq == 1
        header, batches = read_update_log(victim)
        assert header["start_day"] == 21
        assert batches == []


class TestCorruption:
    def _write(self, tmp_path, *members):
        path = tmp_path / "log.gz"
        path.write_bytes(b"".join(members))
        return path

    def test_checksum_mismatch_detected(self, tmp_path):
        doc = _record_doc(BATCHES[0])
        doc["crc"] ^= 1
        path = self._write(tmp_path, _member(_header_doc()), _member(doc))
        with pytest.raises(UpdateLogError, match="checksum"):
            read_update_log(path)

    def test_sequence_gap_detected(self, tmp_path):
        path = self._write(
            tmp_path,
            _member(_header_doc()),
            _member(_record_doc(_batch(2))),
        )
        with pytest.raises(UpdateLogError, match="sequence gap"):
            read_update_log(path)

    def test_tampered_delta_row_detected(self, tmp_path):
        # A self-consistent record (valid crc) whose rows are not
        # valid deltas must still fail loudly.
        body = {"seq": 1, "day": 3, "deltas": [["add", 1, True, "x", 0, 0]]}
        crc = zlib.crc32(
            json.dumps(
                body, separators=(",", ":"), sort_keys=True
            ).encode()
        )
        path = self._write(
            tmp_path, _member(_header_doc()), _member({**body, "crc": crc})
        )
        with pytest.raises(UpdateLogError):
            read_update_log(path)

    def test_non_json_member_detected(self, tmp_path):
        path = self._write(
            tmp_path, _member(_header_doc()), gzip.compress(b"not json", 6)
        )
        with pytest.raises(UpdateLogError, match="undecodable"):
            read_update_log(path)

    def test_wrong_magic_and_version_detected(self, tmp_path):
        path = self._write(tmp_path, _member({"magic": "nope"}))
        with pytest.raises(UpdateLogError, match="not an update log"):
            read_update_log(path)
        doc = _header_doc()
        doc["version"] = LOG_VERSION + 1
        path = self._write(tmp_path, _member(doc))
        with pytest.raises(UpdateLogError, match="version"):
            read_update_log(path)

    def test_plain_garbage_is_an_error(self, tmp_path):
        path = tmp_path / "log.gz"
        path.write_bytes(b"this is not gzip at all")
        with pytest.raises(UpdateLogError):
            read_update_log(path)


class TestFuzz:
    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(blob=st.binary(max_size=300))
    def test_arbitrary_bytes_never_crash(self, blob, tmp_path):
        path = tmp_path / "fuzz.gz"
        path.write_bytes(blob)
        try:
            read_update_log(path)
        except UpdateLogError:
            pass

    @settings(
        max_examples=120,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_single_byte_flips_never_crash(self, data, tmp_path):
        path = tmp_path / "flip.gz"
        # One tmp_path serves every hypothesis example: start each
        # example from a pristine log, not the last one's corpse.
        path.unlink(missing_ok=True)
        write_update_log(path, BATCHES[:2], start_day=1)
        blob = bytearray(path.read_bytes())
        pos = data.draw(
            st.integers(min_value=0, max_value=len(blob) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[pos] ^= 1 << bit
        path.write_bytes(bytes(blob))
        try:
            header, batches = read_update_log(path)
        except UpdateLogError:
            return
        # A flip the reader accepted must have landed in a part it
        # discards (a truncated tail): what it returns is a prefix.
        assert batches == BATCHES[: len(batches)]
        assert header["magic"] == LOG_MAGIC


class TestReader:
    def test_poll_is_incremental(self, tmp_path):
        path = tmp_path / "log.gz"
        writer = UpdateLogWriter(path, start_day=2)
        writer.append(BATCHES[0])
        writer.append(BATCHES[1])
        reader = UpdateLogReader(path)
        assert reader.poll() == BATCHES[:2]
        assert reader.poll() == []
        writer.append(BATCHES[2])
        assert reader.poll() == [BATCHES[2]]
        assert reader.header["start_day"] == 2

    def test_header_property_reads_on_demand(self, tmp_path):
        path = tmp_path / "log.gz"
        UpdateLogWriter(path, start_day=7, meta={"k": 1})
        reader = UpdateLogReader(path)
        assert reader.header == {
            "magic": LOG_MAGIC,
            "version": LOG_VERSION,
            "start_day": 7,
            "meta": {"k": 1},
        }

    def test_header_on_empty_file_raises(self, tmp_path):
        path = tmp_path / "log.gz"
        path.write_bytes(b"")
        with pytest.raises(UpdateLogError, match="no complete header"):
            UpdateLogReader(path).header

    def test_poll_sees_through_a_truncated_tail(self, tmp_path):
        """A reader polling mid-append sees the complete prefix, then
        the rest once the append finishes — the tailing contract the
        follower thread relies on."""
        path = tmp_path / "log.gz"
        writer = UpdateLogWriter(path)
        writer.append(BATCHES[0])
        whole = path.read_bytes()
        record = whole[len(whole) // 2 :]  # deliberately torn bytes
        with open(path, "ab") as handle:
            handle.write(record[: len(record) // 2])
        reader = UpdateLogReader(path)
        assert reader.poll() == [BATCHES[0]]
        # Writer finishes the append (restore a valid file).
        path.write_bytes(whole)
        writer2 = UpdateLogWriter(path)
        writer2.append(BATCHES[1])
        assert reader.poll() == [BATCHES[1]]

    def test_follow_yields_live_appends(self, tmp_path):
        path = tmp_path / "log.gz"
        writer = UpdateLogWriter(path)
        writer.append(BATCHES[0])
        stop = threading.Event()
        received = []
        for batch in UpdateLogReader(path).follow(
            poll_interval=0.01, stop=stop
        ):
            received.append(batch)
            if len(received) == 1:
                writer.append(BATCHES[1])  # append while tailing
            if len(received) == 2:
                stop.set()
        assert received == BATCHES[:2]

    def test_follow_respects_preset_stop(self, tmp_path):
        path = tmp_path / "log.gz"
        UpdateLogWriter(path)
        stop = threading.Event()
        stop.set()
        assert list(
            UpdateLogReader(path).follow(poll_interval=0.01, stop=stop)
        ) == []
