"""Streaming service tests: epoch swaps, the wire handshake, and the
ISSUE's acceptance scenario end to end.

The acceptance test is the subsystem's reason to exist: start a server
on the window-start index state, replay the run's whole update log
through a live follower while concurrent clients hammer it, and
require (a) zero failed queries, (b) every verdict internally
consistent with the single epoch it reports (no torn reads), and
(c) after catch-up, verdicts field-for-field equal to the batch
engine's answers.
"""

import argparse
import threading

import pytest

from repro.cli import CliError, _build_follow_state, main
from repro.net.ipv4 import int_to_ip
from repro.service.client import ReputationClient
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import PROTOCOL_VERSION, ReputationServer
from repro.stream.delta import (
    DeltaBatch,
    ListingDelta,
    day_advance_batches,
    truncate_spans,
)
from repro.stream.epoch import EpochIndex, index_as_of
from repro.stream.follower import LogFollower
from repro.stream.log import UpdateLogWriter, read_update_log


@pytest.fixture(scope="module")
def full_index(small_full_run):
    return ReputationIndex.from_run(small_full_run)


@pytest.fixture(scope="module")
def observed(small_full_run):
    return small_full_run.analysis.observed


@pytest.fixture(scope="module")
def start_day(small_full_run):
    return int(small_full_run.analysis.windows[0][0])


@pytest.fixture(scope="module")
def base_index(full_index, start_day):
    return index_as_of(full_index, start_day)


@pytest.fixture(scope="module")
def replay_batches(observed, start_day):
    return list(day_advance_batches(observed, start_day=start_day))


def _sample_span(index):
    """Some (ip, span) actually present in the index."""
    for ip, spans in index.interval_items():
        if spans:
            return ip, spans[0]
    raise AssertionError("index has no intervals")


class TestIndexAsOf:
    def test_intervals_rolled_back_products_kept(
        self, full_index, base_index, start_day
    ):
        for ip, spans in full_index.interval_items():
            expected = truncate_spans(spans, start_day)
            assert list(base_index.intervals_of(ip)) == expected
            # Measurement-side products survive the rollback whole —
            # they come from the pipeline, not the feed churn.
            assert base_index.asn_of(ip) == full_index.asn_of(ip)
            assert base_index.is_nated(ip) == full_index.is_nated(ip)
            assert base_index.users_behind(ip) == full_index.users_behind(
                ip
            )

    def test_rollback_shrinks_interval_footprint(
        self, full_index, base_index
    ):
        assert (
            base_index.stats()["intervals"]
            < full_index.stats()["intervals"]
        )
        assert base_index.windows == full_index.windows

    def test_base_plus_full_replay_equals_batch_index(
        self, full_index, base_index, replay_batches
    ):
        epochs = EpochIndex(base_index)
        epochs.apply_all(replay_batches)
        final = epochs.index
        for ip, spans in full_index.interval_items():
            assert list(final.intervals_of(ip)) == sorted(spans)


class TestEpochIndex:
    def _delta(self, ip, span, *, op="extend", last=None):
        first, old_last, list_id = span[0], span[1], span[2]
        return ListingDelta(
            old_last + 1, ip, list_id, op,
            first, old_last + 100 if last is None else last,
        )

    def test_apply_publishes_successor(self, base_index):
        epochs = EpochIndex(base_index)
        ip, span = _sample_span(base_index)
        before = epochs.current
        assert (before.number, before.seq) == (0, 0)
        probe_day = span[1] + 50
        assert not before.index.lists_active_on(ip, probe_day)
        after = epochs.apply(
            DeltaBatch(1, probe_day, (self._delta(ip, span),))
        )
        assert (after.number, after.seq) == (1, 1)
        assert span[2] in after.index.lists_active_on(ip, probe_day)
        # The superseded epoch is untouched: a reader holding it keeps
        # getting the old answers (that is the zero-downtime contract).
        assert not before.index.lists_active_on(ip, probe_day)

    def test_replayed_batch_is_skipped(self, base_index):
        epochs = EpochIndex(base_index)
        ip, span = _sample_span(base_index)
        batch = DeltaBatch(1, 1, (self._delta(ip, span),))
        first = epochs.apply(batch)
        again = epochs.apply(batch)
        assert again is first
        assert epochs.stats()["batches_skipped"] == 1

    def test_sequence_gap_rejected(self, base_index):
        epochs = EpochIndex(base_index)
        ip, span = _sample_span(base_index)
        with pytest.raises(ValueError):
            epochs.apply(DeltaBatch(3, 1, (self._delta(ip, span),)))

    def test_untouched_addresses_share_interval_storage(
        self, base_index
    ):
        epochs = EpochIndex(base_index)
        ip, span = _sample_span(base_index)
        other = next(
            i for i, s in base_index.interval_items() if i != ip and s
        )
        epochs.apply(DeltaBatch(1, 1, (self._delta(ip, span),)))
        # Copy-on-write: the successor's table holds the *same* span
        # list objects for every address the batch did not touch.
        assert epochs.index._intervals[other] is (
            base_index._intervals[other]
        )
        assert epochs.index._intervals[ip] is not (
            base_index._intervals.get(ip)
        )

    def test_stats_counters(self, base_index, start_day):
        epochs = EpochIndex(base_index, day=start_day)
        stats = epochs.stats()
        assert stats == {
            "epoch": 0,
            "seq": 0,
            "day": start_day,
            "deltas_applied": 0,
            "batches_skipped": 0,
        }


class TestEngineEpochs:
    def test_static_engine_reports_epoch_zero(self, full_index):
        engine = QueryEngine(full_index)
        ip, _ = _sample_span(full_index)
        verdict = engine.query(ip)
        assert (verdict.epoch, verdict.seq) == (0, 0)
        assert engine.epoch_state() == (0, 0)
        assert engine.stats()["epoch"] == {"epoch": 0, "seq": 0}

    def test_hot_swap_invalidates_cache_by_epoch(self, base_index):
        epochs = EpochIndex(base_index)
        engine = QueryEngine(epochs)
        ip, span = _sample_span(base_index)
        probe_day = span[1] + 50
        stale = engine.query(ip, probe_day)
        assert not stale.listed and stale.epoch == 0
        engine.query(ip, probe_day)  # prime the cache
        delta = ListingDelta(
            probe_day, ip, span[2], "extend", span[0], probe_day
        )
        epochs.apply(DeltaBatch(1, probe_day, (delta,)))
        fresh = engine.query(ip, probe_day)
        # Same (ip, day): the cached epoch-0 verdict must not answer.
        assert fresh.epoch == 1 and fresh.seq == 1
        assert fresh.listed and span[2] in fresh.lists

    def test_streaming_stats_carry_epoch_block(self, base_index):
        epochs = EpochIndex(base_index)
        engine = QueryEngine(epochs)
        stats = engine.stats()
        assert stats["epoch"]["epoch"] == 0
        assert "deltas_applied" in stats["epoch"]


class TestHelloHandshake:
    def test_static_server_handshake(self, full_index):
        server = ReputationServer(
            QueryEngine(full_index), connection_timeout=5.0
        )
        host, port = server.start()
        try:
            with ReputationClient(host, port) as client:
                hello = client.hello()
                assert hello == {
                    "service": "repro-reputation",
                    "protocol": PROTOCOL_VERSION,
                    "streaming": False,
                    "epoch": 0,
                    "seq": 0,
                }
        finally:
            server.shutdown()

    def test_streaming_server_handshake_tracks_epochs(
        self, base_index, replay_batches
    ):
        epochs = EpochIndex(base_index)
        server = ReputationServer(
            QueryEngine(epochs), connection_timeout=5.0, streaming=True
        )
        host, port = server.start()
        try:
            with ReputationClient(host, port) as client:
                assert client.hello()["streaming"] is True
                assert client.hello()["epoch"] == 0
                epochs.apply(replay_batches[0])
                hello = client.hello()
                assert hello["epoch"] == 1
                assert hello["seq"] == replay_batches[0].seq
                stats = client.stats()
                assert stats["epoch"]["epoch"] == 1
                assert stats["epoch"]["day"] == replay_batches[0].day
        finally:
            server.shutdown()


class TestFollowEndToEnd:
    """The acceptance scenario, with the log produced live."""

    def _expected_lists(self, observed, ip, query_day, stream_day):
        """Active lists for (ip, query_day) in the state a collector
        holds on stream_day — what a verdict stamped with that stream
        position must report, whatever epoch the swap is on."""
        return sorted(
            {
                l.list_id
                for l in observed.listings_of_ip(ip)
                if l.first_day <= stream_day
                and l.first_day <= query_day <= min(l.last_day, stream_day)
            }
        )

    def test_live_replay_fidelity_and_no_torn_reads(
        self,
        tmp_path,
        small_full_run,
        full_index,
        base_index,
        observed,
        start_day,
        replay_batches,
    ):
        analysis = small_full_run.analysis
        ips = sorted(analysis.blocklisted_ips)
        days = [d for w in analysis.windows for d in w]
        day_of_seq = {0: start_day}
        day_of_seq.update(
            (batch.seq, batch.day) for batch in replay_batches
        )
        final_seq = replay_batches[-1].seq

        log_path = tmp_path / "updates.gz"
        writer = UpdateLogWriter(log_path, start_day=start_day)
        epochs = EpochIndex(base_index, day=start_day)
        server = ReputationServer(
            QueryEngine(epochs), connection_timeout=10.0, streaming=True
        )
        host, port = server.start()
        follower = LogFollower(log_path, epochs, poll_interval=0.002)
        failures = []
        produced = threading.Event()

        def produce():
            # A live producer: the follower tails a growing file, so
            # swaps genuinely interleave with the queries below.
            for batch in replay_batches:
                writer.append(batch)
            produced.set()

        def consume(worker_seed):
            try:
                last_epoch = -1
                with ReputationClient(host, port) as client:
                    for i in range(250):
                        ip = ips[(worker_seed + 3 * i) % len(ips)]
                        query_day = days[(worker_seed + i) % len(days)]
                        verdict = client.query(ip, query_day)
                        if verdict["epoch"] < last_epoch:
                            failures.append(
                                ("epoch went backwards", verdict)
                            )
                        last_epoch = verdict["epoch"]
                        expected = self._expected_lists(
                            observed, ip, query_day,
                            day_of_seq[verdict["seq"]],
                        )
                        if verdict["lists"] != expected:
                            failures.append(("torn lists", verdict))
                        if verdict["listed"] != bool(expected):
                            failures.append(("torn listed", verdict))
                        if verdict["unjust"] != (
                            bool(expected)
                            and (verdict["nated"] or verdict["dynamic"])
                        ):
                            failures.append(("torn unjust", verdict))
            except Exception as exc:  # pragma: no cover — must not happen
                failures.append(("query failed", repr(exc)))

        try:
            follower.start()
            workers = [
                threading.Thread(target=consume, args=(seed,))
                for seed in range(4)
            ]
            producer = threading.Thread(target=produce)
            for thread in workers + [producer]:
                thread.start()
            for thread in workers + [producer]:
                thread.join(timeout=60.0)
            assert produced.is_set()
            assert not failures, failures[:5]
            assert follower.wait_for_seq(final_seq, timeout=30.0), (
                follower.stats()
            )

            # After full replay: field-for-field equality with the
            # batch engine, for every blocklisted IP on every window
            # boundary day.
            batch_engine = QueryEngine(full_index)
            with ReputationClient(host, port) as client:
                for day in days:
                    streamed = client.query_batch(
                        [(ip, day) for ip in ips]
                    )
                    for ip, got in zip(ips, streamed):
                        want = batch_engine.query(ip, day).to_wire()
                        got = dict(got)
                        assert got.pop("epoch") == final_seq
                        assert got.pop("seq") == final_seq
                        want.pop("epoch"), want.pop("seq")
                        assert got == want, (int_to_ip(ip), day)
        finally:
            follower.stop()
            server.shutdown()
        assert follower.stats()["error"] is None


class TestCliStream:
    @pytest.fixture(scope="class")
    def cli_env(self, tmp_path_factory):
        mp = pytest.MonkeyPatch()
        mp.setenv(
            "RESULTS_CACHE_DIR",
            str(tmp_path_factory.mktemp("run-cache")),
        )
        yield mp
        mp.undo()

    @pytest.fixture(scope="class")
    def cli_log(self, cli_env, tmp_path_factory):
        out = tmp_path_factory.mktemp("stream") / "updates.gz"
        assert main(["stream", "--out", str(out)]) == 0
        return out

    def test_stream_writes_replayable_log(
        self, cli_log, observed, start_day, replay_batches
    ):
        header, batches = read_update_log(cli_log)
        assert header["start_day"] == start_day
        assert header["meta"]["preset"] == "small"
        assert header["meta"]["seed"] == 2020
        # The CLI's cached run is the same seeded world as the session
        # fixture, so its churn stream is bit-identical.
        assert batches == replay_batches

    def test_stream_replaces_existing_file(self, cli_env, tmp_path):
        out = tmp_path / "updates.gz"
        out.write_bytes(b"old junk")
        assert main(["stream", "--out", str(out)]) == 0
        header, batches = read_update_log(out)
        assert header["magic"] == "repro-update-log"
        assert batches

    def test_stream_paced_emission(self, cli_env, tmp_path, capsys):
        out = tmp_path / "paced.gz"
        assert main(
            ["stream", "--out", str(out), "--replay-days", "1e6"]
        ) == 0
        assert "day batches" in capsys.readouterr().out
        _, batches = read_update_log(out)
        assert batches

    def test_follow_state_builds_and_validates(
        self, cli_env, cli_log, start_day
    ):
        args = argparse.Namespace(
            follow=str(cli_log), preset="small", seed=2020, workers=1
        )
        epochs, follower = _build_follow_state(args)
        assert epochs.current.number == 0
        assert epochs.current.day == start_day
        assert follower.epochs is epochs

    def test_follow_state_rejects_mismatched_base(
        self, cli_env, tmp_path
    ):
        log = tmp_path / "other.gz"
        UpdateLogWriter(
            log, start_day=214, meta={"ips": 99999, "intervals": 1}
        )
        args = argparse.Namespace(
            follow=str(log), preset="small", seed=2020, workers=1
        )
        with pytest.raises(CliError, match="wrong preset/seed"):
            _build_follow_state(args)

    def test_serve_follow_conflicts_with_snapshot(self, capsys):
        code = main(
            [
                "serve", "--follow", "x.gz", "--snapshot", "y.idx",
                "--port", "0",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_serve_follow_missing_log_is_error(self, tmp_path, capsys):
        code = main(
            [
                "serve", "--follow", str(tmp_path / "absent.gz"),
                "--port", "0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
