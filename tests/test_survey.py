"""Tests for the operator survey: schema, generation, tabulation."""

import random

import pytest

from repro.survey.analyze import figure9_usage, render_table1, summarize
from repro.survey.generate import FIGURE9_USAGE, SURVEY_SIZE, generate_responses
from repro.survey.model import BLOCKLIST_TYPES, SurveyResponse


def response(**overrides):
    defaults = dict(
        respondent_id=0,
        network_types=("enterprise",),
        region="EU",
        subscribers=1000,
        maintains_internal=True,
        uses_external=True,
        paid_lists=1,
        public_lists=3,
        direct_block=True,
        threat_intel_input=False,
        cgn_hurts_accuracy=True,
        dynamic_hurts_accuracy=False,
        blocklist_types=frozenset({"spam"}),
    )
    defaults.update(overrides)
    return SurveyResponse(**defaults)


class TestSchema:
    def test_valid(self):
        r = response()
        assert r.answered_reuse_questions()
        assert r.faced_reuse_issues()

    def test_skipped_reuse_questions(self):
        r = response(cgn_hurts_accuracy=None, dynamic_hurts_accuracy=None)
        assert not r.answered_reuse_questions()
        assert not r.faced_reuse_issues()

    def test_validation(self):
        with pytest.raises(ValueError):
            response(respondent_id=-1)
        with pytest.raises(ValueError):
            response(network_types=("pigeon-net",))
        with pytest.raises(ValueError):
            response(blocklist_types=frozenset({"astrology"}))
        with pytest.raises(ValueError):
            response(uses_external=False, paid_lists=2)
        with pytest.raises(ValueError):
            response(paid_lists=-1)


class TestGeneration:
    def test_size(self):
        responses = generate_responses(random.Random(1))
        assert len(responses) == SURVEY_SIZE

    def test_published_marginals_exact_at_65(self):
        responses = generate_responses(random.Random(1))
        summary = summarize(responses)
        assert round(summary.pct_external) == 85
        assert round(summary.pct_threat_intel) == 35
        assert summary.reuse_respondents == 34
        assert round(summary.pct_dynamic_issue) == 76
        assert round(summary.pct_cgn_issue) == 56
        assert summary.paid_max == 39
        assert summary.public_max == 68

    def test_direct_block_near_59(self):
        responses = generate_responses(random.Random(1))
        summary = summarize(responses)
        assert 55 <= summary.pct_direct_block <= 62

    def test_averages_close_to_paper(self):
        responses = generate_responses(random.Random(7))
        summary = summarize(responses)
        assert 1 <= summary.paid_avg <= 4
        assert 6 <= summary.public_avg <= 13

    def test_no_external_means_no_counts(self):
        for r in generate_responses(random.Random(3)):
            if not r.uses_external:
                assert r.paid_lists == 0 and r.public_lists == 0
                assert not r.blocklist_types

    def test_custom_size(self):
        assert len(generate_responses(random.Random(1), n=10)) == 10
        with pytest.raises(ValueError):
            generate_responses(random.Random(1), n=0)

    def test_deterministic(self):
        a = generate_responses(random.Random(5))
        b = generate_responses(random.Random(5))
        assert a == b


class TestAnalysis:
    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_figure9_order_and_range(self):
        responses = generate_responses(random.Random(2))
        usage = figure9_usage(responses)
        assert len(usage) == len(BLOCKLIST_TYPES)
        values = [pct for _, pct in usage]
        assert values == sorted(values, reverse=True)
        assert all(0 <= v <= 100 for v in values)

    def test_figure9_spam_tops(self):
        responses = generate_responses(random.Random(2))
        usage = dict(figure9_usage(responses))
        # Spam/reputation lists dominate, VOIP/banking trail (Figure 9).
        assert usage["spam"] > usage["voip"]
        assert usage["reputation"] > usage["banking"]

    def test_figure9_no_affected(self):
        rs = [
            response(cgn_hurts_accuracy=False, dynamic_hurts_accuracy=False)
        ]
        usage = figure9_usage(rs)
        assert all(pct == 0.0 for _, pct in usage)

    def test_render_table1(self):
        responses = generate_responses(random.Random(1))
        text = render_table1(summarize(responses))
        assert "External blocklists" in text
        assert "Max:39" in text
        assert "Max:68" in text
        assert "34 of 65" in text

    def test_figure9_targets_match_published_shape(self):
        # The configured usage table must itself be sorted like Fig 9.
        values = [FIGURE9_USAGE[t] for t in BLOCKLIST_TYPES]
        assert values == sorted(values, reverse=True)
