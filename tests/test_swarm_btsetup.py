"""Tests for overlay construction and the crawl wiring."""

import pytest

from repro.bittorrent.swarm import PeerSpec, build_overlay
from repro.experiments.btsetup import CrawlSetup, _build_specs, run_crawl
from repro.internet.groundtruth import NAT_NONE
from repro.internet.scenario import ScenarioConfig, build_scenario
from repro.net.ipv4 import ip_to_int
from repro.sim.events import Scheduler
from repro.sim.nat import HostStack
from repro.sim.rng import RngHub
from repro.sim.udp import UdpFabric


def make_world(seed=31):
    hub = RngHub(seed)
    sched = Scheduler()
    fabric = UdpFabric(sched, hub, loss_rate=0.0)
    rng = hub.stream("t")
    return hub, sched, fabric, rng


def make_specs(fabric, rng, n=12):
    specs = []
    for index in range(n):
        ip = ip_to_int(f"10.1.{index}.1")
        stack = HostStack(fabric, ip, rng)
        specs.append(PeerSpec(f"p{index}", ip, stack.open_socket))
    return specs


class TestBuildOverlay:
    def test_every_peer_online_with_contacts(self):
        hub, sched, fabric, rng = make_world()
        specs = make_specs(fabric, rng)
        bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
        overlay = build_overlay(fabric, specs, bstack, rng)
        assert len(overlay.peers) == 12
        for peer in overlay.peers.values():
            assert peer.online
            assert len(peer.table) >= 1
        assert overlay.bootstrap.online
        assert len(overlay.bootstrap.table) >= 10

    def test_empty_specs_rejected(self):
        hub, sched, fabric, rng = make_world()
        bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
        with pytest.raises(ValueError):
            build_overlay(fabric, [], bstack, rng)

    def test_duplicate_keys_rejected(self):
        hub, sched, fabric, rng = make_world()
        specs = make_specs(fabric, rng, n=2)
        specs.append(specs[0])
        bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
        with pytest.raises(ValueError):
            build_overlay(fabric, specs, bstack, rng)

    def test_announce_spreads_contact(self):
        hub, sched, fabric, rng = make_world()
        specs = make_specs(fabric, rng)
        bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
        overlay = build_overlay(fabric, specs, bstack, rng)
        peer = overlay.peers["p0"]
        peer.restart()
        overlay.announce(peer)
        contact = peer.contact_info()
        holders = sum(
            1
            for other in overlay.peers.values()
            if other is not peer and other.table.contains(contact.node_id)
        )
        assert holders >= 1
        assert overlay.bootstrap.table.contains(contact.node_id)

    def test_churn_fraction_validation(self):
        hub, sched, fabric, rng = make_world()
        specs = make_specs(fabric, rng, n=4)
        bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
        overlay = build_overlay(fabric, specs, bstack, rng)
        with pytest.raises(ValueError):
            overlay.schedule_churn(sched, duration=10.0, restart_fraction=1.5)

    def test_departed_peers_stop_answering(self):
        hub, sched, fabric, rng = make_world()
        specs = make_specs(fabric, rng, n=6)
        bstack = HostStack(fabric, ip_to_int("30.0.0.1"), rng)
        overlay = build_overlay(fabric, specs, bstack, rng)
        overlay.schedule_churn(
            sched, duration=10.0, restart_fraction=0.0, depart_fraction=1.0
        )
        sched.run_until(20.0)
        assert not overlay.online_peers()


class TestBuildSpecs:
    def test_specs_match_ground_truth(self):
        scenario = build_scenario(ScenarioConfig.small(seed=77))
        hub, sched, fabric, rng = make_world()
        specs, gateways = _build_specs(scenario.truth, fabric, rng)
        truth = scenario.truth
        expected_users = {
            user.key
            for line in truth.lines.values()
            if line.static_ip is not None
            for user in truth.bt_users_behind(line)
        }
        assert {s.key for s in specs} == expected_users

    def test_one_gateway_per_nat_line(self):
        scenario = build_scenario(ScenarioConfig.small(seed=77))
        hub, sched, fabric, rng = make_world()
        specs, gateways = _build_specs(scenario.truth, fabric, rng)
        truth = scenario.truth
        nat_ips_with_bt = {
            line.static_ip
            for line in truth.lines.values()
            if line.nat != NAT_NONE
            and line.static_ip is not None
            and truth.bt_users_behind(line)
        }
        assert set(gateways) == nat_ips_with_bt

    def test_nat_peer_public_view_is_gateway_ip(self):
        scenario = build_scenario(ScenarioConfig.small(seed=77))
        hub, sched, fabric, rng = make_world()
        specs, gateways = _build_specs(scenario.truth, fabric, rng)
        if not gateways:
            pytest.skip("scenario produced no BT-active NAT lines")
        gateway_ip = next(iter(gateways))
        # Find a spec whose socket comes from this gateway and open it.
        truth = scenario.truth
        line = next(
            l
            for l in truth.lines.values()
            if l.static_ip == gateway_ip
        )
        user_keys = {
            u.key for u in truth.bt_users_behind(line)
        }
        spec = next(s for s in specs if s.key in user_keys)
        sock = spec.socket_factory()
        assert sock.endpoint.ip == gateway_ip


class TestRunCrawlWiring:
    def test_restriction_excludes_unlisted_space(self):
        scenario = build_scenario(ScenarioConfig.small(seed=5))
        outcome = run_crawl(
            scenario,
            CrawlSetup(duration_hours=4.0, restrict_to_blocklisted=True),
        )
        from repro.net.ipv4 import slash24_of

        allowed = {slash24_of(ip) for ip in scenario.blocklisted_ips()}
        bootstrap_space = ip_to_int("198.18.0.0")
        for ip in outcome.bittorrent_ips():
            if ip >> 16 == bootstrap_space >> 16:
                continue  # crawler/bootstrap benchmark space
            assert slash24_of(ip) in allowed


class TestSetupImmutability:
    def test_run_crawl_does_not_mutate_caller_config(self):
        from repro.bittorrent.crawler import CrawlerConfig

        scenario = build_scenario(ScenarioConfig.small(seed=5))
        crawler_config = CrawlerConfig()
        original_duration = crawler_config.duration
        setup = CrawlSetup(duration_hours=1.0, crawler=crawler_config)
        run_crawl(scenario, setup)
        assert crawler_config.duration == original_duration
        assert crawler_config.allowed_space is None
