"""IPv6 serving tests: /64 pools, alias collapse, the hitlist-v6
scenario, and the acceptance bar — a multi-shard v6 cluster following
a live log answers verdicts identical to the static path, with
aliased prefixes excluded from reputation."""

import random
import threading

import pytest

from repro.adversary import (
    adversary_names,
    get_adversary,
    scenario_index,
    score_scenario,
    verify_stream_fidelity,
    write_scenario_log,
)
from repro.cluster import LocalCluster
from repro.ipv6.addr6 import Prefix6, int_to_ip6, ip6_to_int, subnet_of
from repro.ipv6.entropyip import REUSE_ROTATING, REUSE_STABLE
from repro.ipv6.generator import Strategy, SubnetPlan, generate_corpus
from repro.net.family import V4, V6
from repro.service.client import ReputationClient, ServiceError
from repro.service.engine import QueryEngine
from repro.stream.epoch import EpochIndex, index_as_of
from repro.v6serve import (
    HitlistV6Model,
    cluster_pools,
    find_aliased_prefixes,
    prune_aliased,
    rotating_prefixes,
    v6_reuse_facts,
)


def _p6(text, length=64):
    return Prefix6(ip6_to_int(text), length)


def _mixed_corpus(rng):
    plans = (
        SubnetPlan(_p6("2001:db8:1::"), Strategy.PRIVACY, hosts=24),
        SubnetPlan(_p6("2001:db8:2::"), Strategy.EUI64, hosts=24),
        SubnetPlan(_p6("2001:db8:3::"), Strategy.SEQUENTIAL, hosts=12),
    )
    return generate_corpus(plans, rng)


class TestPools:
    def test_privacy_rotates_structured_stays_stable(self):
        pools = cluster_pools(_mixed_corpus(random.Random(3)))
        by_prefix = {str(p.prefix): p for p in pools}
        assert by_prefix["2001:db8:1::/64"].risk == REUSE_ROTATING
        assert by_prefix["2001:db8:2::/64"].risk == REUSE_STABLE
        assert by_prefix["2001:db8:3::/64"].risk == REUSE_STABLE

    def test_counts_and_order(self):
        corpus = _mixed_corpus(random.Random(3))
        pools = cluster_pools(corpus)
        assert [p.prefix for p in pools] == sorted(
            p.prefix for p in pools
        )
        assert sum(p.addresses for p in pools) == len(corpus)

    def test_rotating_prefixes_filters(self):
        pools = cluster_pools(_mixed_corpus(random.Random(3)))
        rotating = rotating_prefixes(pools)
        assert rotating == (_p6("2001:db8:1::"),)


class TestAliases:
    def test_aliased_block_detected_sparse_block_not(self):
        aliased_block = _p6("2001:db8:ff::")
        sparse_block = _p6("2001:db8:1::")
        population = {sparse_block.network | n for n in range(1, 30)}

        def responder(ip):
            return aliased_block.contains(ip) or ip in population

        found = find_aliased_prefixes(
            [aliased_block, sparse_block],
            responder,
            random.Random(0),
        )
        assert found == frozenset([aliased_block])

    def test_prune_keeps_order_and_drops_aliased(self):
        aliased = _p6("2001:db8:ff::")
        keep = [ip6_to_int("2001:db8:1::5"), ip6_to_int("2001:db8:1::9")]
        corpus = [keep[0], aliased.network | 7, keep[1]]
        assert prune_aliased(corpus, [aliased]) == keep

    def test_slash128_never_collapses(self):
        lone = Prefix6(ip6_to_int("2001:db8::1"), 128)
        found = find_aliased_prefixes(
            [lone], lambda _ip: True, random.Random(0)
        )
        assert found == frozenset()

    def test_probe_count_validated(self):
        with pytest.raises(ValueError):
            find_aliased_prefixes(
                [], lambda _ip: True, random.Random(0), probes=0
            )


class TestReuseFacts:
    def test_facts_exclude_aliased_and_flag_rotating(self):
        corpus = list(_mixed_corpus(random.Random(3)))
        aliased_block = _p6("2001:db8:ff::")
        rng = random.Random(1)
        corpus += [
            aliased_block.network | rng.getrandbits(64) for _ in range(20)
        ]
        population = set(corpus)

        def responder(ip):
            return ip in population or aliased_block.contains(ip)

        facts = v6_reuse_facts(
            corpus, responder=responder, rng=random.Random(2)
        )
        assert facts.aliased == frozenset([aliased_block])
        assert facts.dynamic_prefixes == (_p6("2001:db8:1::"),)
        assert all(
            not aliased_block.contains(ip) for ip in facts.hitlist
        )
        assert aliased_block not in {p.prefix for p in facts.pools}

    def test_default_responder_collapses_nothing(self):
        corpus = _mixed_corpus(random.Random(3))
        facts = v6_reuse_facts(corpus)
        assert facts.aliased == frozenset()
        assert facts.hitlist == tuple(corpus)


class TestHitlistModel:
    def test_registered_with_adversary_lab(self):
        assert "hitlist-v6" in adversary_names()
        assert isinstance(get_adversary("hitlist-v6"), HitlistV6Model)

    def test_deterministic_per_seed(self):
        model = HitlistV6Model()
        assert model.build(11) == model.build(11)
        assert model.build(11) != model.build(12)

    def test_crawler_discovers_and_alias_collapses(self):
        survey = HitlistV6Model().survey(5)
        metrics = survey.metrics()
        # The aliased block answers for generated candidates...
        assert metrics["discovered_aliased"] > 0
        # ...but never survives into the served facts.
        assert survey.facts.aliased == frozenset(
            [survey.aliased_prefix]
        )
        assert survey.aliased_prefix not in survey.facts.dynamic_prefixes
        assert all(
            not survey.aliased_prefix.contains(ip)
            for ip in survey.facts.hitlist
        )
        # Exactly the privacy pools are dynamic.
        assert metrics["rotating_pools"] == HitlistV6Model.PRIVACY_SUBNETS

    def test_scenario_is_ipv6_and_json_declares_it(self):
        import json

        scenario = HitlistV6Model().build(5)
        assert scenario.family == "ipv6"
        assert json.loads(scenario.to_json())["family"] == "ipv6"
        # v4 scenarios keep their pre-family document shape.
        v4_doc = json.loads(get_adversary("fast-flux").build(5).to_json())
        assert "family" not in v4_doc

    def test_scenario_index_serves_128_bit_verdicts(self):
        scenario = HitlistV6Model().build(5)
        index = scenario_index(scenario)
        assert index.family is V6
        engine = QueryEngine(index)
        pool = scenario.ledger.dynamic_prefixes[0]
        verdict = engine.query(pool.network | 1, 30).to_wire()
        assert verdict["reuse_kind"] == "dynamic"
        assert ":" in verdict["ip"]


class TestV6ClusterEndToEnd:
    """Acceptance: the seeded hitlist scenario served by a ≥2-shard v6
    cluster with a live LogFollower answers verdicts identical to the
    static path, and aliased space carries no reuse facts."""

    def test_sharded_follower_matches_static_path(self, tmp_path):
        model = HitlistV6Model()
        scenario = model.build(7)
        score = score_scenario(scenario)
        log_path = tmp_path / "hitlist-v6.log"
        write_scenario_log(score, log_path)

        from repro.adversary.bridge import scenario_batches

        # The static answer: the day-0 rollback plus the whole batch
        # stream applied in one process (same epoch/seq the followers
        # reach).
        batches = scenario_batches(score)
        epochs = EpochIndex(index_as_of(score.index, 0), day=0)
        epochs.apply_all(batches)
        static = QueryEngine(epochs)
        eval_points = scenario.ledger.eval_points()
        sample = eval_points[:: max(1, len(eval_points) // 120)]

        base = index_as_of(score.index, 0)
        assert base.family is V6
        cluster = LocalCluster(
            base,
            shards=3,
            follow=log_path,
            start_day=0,
            mode="thread",
            poll_interval=0.002,
        )
        try:
            cluster.start()
            assert cluster.router.wait_healthy(10.0)
            assert cluster.partition.family is V6
            final_seq = batches[-1].seq
            assert cluster.wait_for_seq(final_seq, timeout=60.0)
            with ReputationClient(
                *cluster.address, family=V6
            ) as client:
                verdicts = client.query_batch(sample)
                for (ip, day), got in zip(sample, verdicts):
                    want = static.query(ip, day).to_wire()
                    assert got == want, (int_to_ip6(ip), day)

                # Aliased space never acquired reuse facts: a random
                # aliased-block address is not dynamic, while a
                # privacy-pool address is.
                survey = model.survey(7)
                aliased_ip = survey.aliased_prefix.network | 0xDEAD
                rotating_ip = (
                    scenario.ledger.dynamic_prefixes[0].network | 0xBEEF
                )
                aliased_verdict = client.query(aliased_ip, 30)
                rotating_verdict = client.query(rotating_ip, 30)
                assert aliased_verdict["reuse_kind"] != "dynamic"
                assert not aliased_verdict["dynamic"]
                assert rotating_verdict["reuse_kind"] == "dynamic"
        finally:
            cluster.close()

    def test_stream_fidelity_harness_passes(self, tmp_path):
        scenario = HitlistV6Model().build(3)
        score = score_scenario(scenario)
        log_path = tmp_path / "fidelity.log"
        write_scenario_log(score, log_path)
        summary = verify_stream_fidelity(score, log_path)
        assert summary["verdicts_compared"] == len(score.verdicts)


class TestDualPlaneCluster:
    """A v4 cluster hosting a v6 plane serves both families; a
    v4-only cluster rejects v6 work with a clear error."""

    @pytest.fixture(scope="class")
    def v4_index(self, small_full_run):
        from repro.service.index import ReputationIndex

        return ReputationIndex.from_run(small_full_run)

    @pytest.fixture(scope="class")
    def v6_scenario(self):
        return HitlistV6Model().build(7)

    @pytest.fixture(scope="class")
    def v6_index(self, v6_scenario):
        return scenario_index(v6_scenario)

    def test_both_planes_answer(self, v4_index, v6_scenario, v6_index):
        with LocalCluster(
            v4_index,
            shards=2,
            v6_index=v6_index,
            v6_shards=2,
            mode="thread",
        ) as cluster:
            assert cluster.router.wait_healthy(10.0)
            pool = v6_scenario.ledger.dynamic_prefixes[0]
            v6_literal = int_to_ip6(pool.network | 5)
            with ReputationClient(*cluster.address) as client:
                v4_verdict = client.query("198.51.100.7", 0)
                assert v4_verdict["ip"] == "198.51.100.7"
                v6_verdict = client.query(v6_literal, 30)
                assert v6_verdict["ip"] == v6_literal
                assert v6_verdict["reuse_kind"] == "dynamic"
                stats = client.stats()
                assert "partition6" in stats
                assert stats["partition6"]["family"] == "ipv6"
                assert "family" not in stats["partition"]

    def test_v4_only_cluster_rejects_v6(self, v4_index):
        with LocalCluster(v4_index, shards=2, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            with ReputationClient(*cluster.address) as client:
                with pytest.raises(ServiceError, match="ipv6"):
                    client.query("2001:db8::1", 0)

    def test_pure_v6_cluster_rejects_v4(self, v6_index):
        with LocalCluster(v6_index, shards=2, mode="thread") as cluster:
            assert cluster.router.wait_healthy(10.0)
            with ReputationClient(
                *cluster.address, family=V6
            ) as client:
                with pytest.raises(ServiceError, match="ipv4"):
                    client.query("8.8.8.8", 0)


class TestV4NonRegression:
    """The family generalization must leave every v4 artefact
    byte-compatible: verdict wire shape, snapshot documents, and
    partition payloads carry no family key."""

    @staticmethod
    def _snapshot_state(path):
        import gzip
        import pickle

        with gzip.open(path, "rb") as handle:
            return pickle.load(handle)["state"]

    def test_v4_snapshot_has_no_family_key(
        self, tmp_path, small_full_run
    ):
        from repro.service.index import ReputationIndex

        index = ReputationIndex.from_run(small_full_run)
        assert index.family is V4
        index.save(tmp_path / "v4.snap")
        assert "family" not in self._snapshot_state(tmp_path / "v4.snap")

    def test_v4_partition_wire_has_no_family_key(self):
        from repro.cluster import PartitionMap

        assert "family" not in PartitionMap(4).to_wire()
        payload = PartitionMap(4, family=V6).to_wire()
        assert payload["family"] == "ipv6"

    def test_v6_snapshot_round_trips_family(self, tmp_path):
        from repro.service.index import ReputationIndex

        scenario = HitlistV6Model().build(3)
        index = scenario_index(scenario)
        path = tmp_path / "v6.snap"
        index.save(path)
        assert self._snapshot_state(path)["family"] == "ipv6"
        restored = ReputationIndex.load(path)
        assert restored.family is V6
        ip = scenario.ledger.dynamic_prefixes[0].network | 9
        want = QueryEngine(index).query(ip, 20).to_wire()
        got = QueryEngine(restored).query(ip, 20).to_wire()
        assert got == want
